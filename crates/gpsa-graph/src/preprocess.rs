//! The preprocessing phase (paper §V-B): edge list → sorted adjacency →
//! binary on-disk CSR.
//!
//! "With the edge-list format, an extra sorting operation is needed to
//! transform it into the adjacency format." For graphs larger than memory
//! the sort must be external, so this module implements a chunked
//! sort-and-merge over binary edge files: split into runs that fit the
//! configured memory budget, sort each run, k-way merge the runs while
//! writing the CSR body.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::csr::Csr;
use crate::disk_csr::{self, DiskCsrWriter};
use crate::edgelist::EdgeList;
use crate::types::{Edge, VertexId, SEPARATOR};
use crate::varint;

/// Preprocessing configuration.
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Maximum number of edges held in memory per sort run.
    pub run_capacity: usize,
    /// Inline out-degrees into the CSR body (paper Fig. 4c; v1 output
    /// only — the v2 index always carries degrees).
    pub with_degrees: bool,
    /// Write the v2 delta-varint compressed format (default). Disable to
    /// produce the paper's v1 word-array layout.
    pub compress: bool,
    /// Directory for temporary run files (defaults to the output's parent).
    pub temp_dir: Option<PathBuf>,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            run_capacity: 8 << 20, // 8M edges = 64 MiB per run
            with_degrees: true,
            compress: true,
            temp_dir: None,
        }
    }
}

impl PreprocessOptions {
    /// The default options but with the v1 uncompressed output format.
    pub fn uncompressed() -> Self {
        PreprocessOptions {
            compress: false,
            ..Default::default()
        }
    }
}

/// Statistics reported by a preprocessing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Vertices in the output graph.
    pub n_vertices: usize,
    /// Edges in the output graph.
    pub n_edges: usize,
    /// Sort runs written (1 means the input fit in one run).
    pub runs: usize,
    /// Input bytes consumed.
    pub input_bytes: u64,
    /// Output CSR bytes written (body + header, excluding the index).
    pub output_bytes: u64,
    /// Companion index bytes written.
    pub index_bytes: u64,
    /// Whether the output uses the v2 compressed encoding.
    pub compressed: bool,
}

impl PreprocessStats {
    /// What the edge file would weigh in the v1 layout with inlined
    /// degrees (4 bytes per edge, degree and separator words per vertex).
    pub fn v1_equivalent_bytes(&self) -> u64 {
        32 + 4 * (self.n_edges as u64 + 2 * self.n_vertices as u64)
    }

    /// Edge-file compression ratio vs the v1 layout (1.0 when the output
    /// *is* v1-shaped; higher is smaller).
    pub fn compression_ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            return 1.0;
        }
        self.v1_equivalent_bytes() as f64 / self.output_bytes as f64
    }
}

/// Convert a **text** edge list file into the on-disk CSR format.
pub fn text_to_csr<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    opts: &PreprocessOptions,
) -> io::Result<PreprocessStats> {
    let el = EdgeList::read_text_file(&input)?;
    let input_bytes = std::fs::metadata(&input)?.len();
    let mut stats = edges_to_csr(el, output, opts)?;
    stats.input_bytes = input_bytes;
    Ok(stats)
}

/// Convert an **adjacency-format** text file (`src n d1 … dn` per line,
/// the paper's second input format) into the on-disk CSR format. Already
/// grouped by source, so no sort is needed ("If the input graph is in
/// adjacency format, we can just write the destination vertex id", §V-B).
pub fn adjacency_to_csr<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    opts: &PreprocessOptions,
) -> io::Result<PreprocessStats> {
    let el = EdgeList::read_adjacency_file(&input)?;
    let input_bytes = std::fs::metadata(&input)?.len();
    let mut stats = edges_to_csr(el, output, opts)?;
    stats.input_bytes = input_bytes;
    Ok(stats)
}

/// Convert a **binary** edge list file (`u32` LE pairs) into the on-disk
/// CSR format using an external sort bounded by `opts.run_capacity`.
pub fn binary_to_csr<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    opts: &PreprocessOptions,
) -> io::Result<PreprocessStats> {
    let input = input.as_ref();
    let output = output.as_ref();
    let input_bytes = std::fs::metadata(input)?.len();
    let temp_dir = opts
        .temp_dir
        .clone()
        .or_else(|| output.parent().map(|p| p.to_path_buf()))
        .unwrap_or_else(|| PathBuf::from("."));

    // Phase 1: chunked sort into run files.
    let mut reader = BufReader::new(File::open(input)?);
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut n_edges: usize = 0;
    loop {
        let mut run = read_run(&mut reader, opts.run_capacity)?;
        if run.is_empty() {
            break;
        }
        n_edges += run.len();
        for e in &run {
            max_vertex = max_vertex.max(e.src as u64).max(e.dst as u64);
        }
        run.sort_unstable();
        let path = temp_dir.join(format!(
            "gpsa-run-{}-{}.tmp",
            std::process::id(),
            runs.len()
        ));
        write_run(&path, &run)?;
        runs.push(path);
        if run.len() < opts.run_capacity {
            break; // EOF reached inside read_run
        }
    }
    let n_vertices = if n_edges == 0 {
        0
    } else {
        max_vertex as usize + 1
    };

    // Phase 2: k-way merge runs, writing the CSR body directly.
    let stats = merge_runs_to_csr(&runs, n_vertices, n_edges, output, opts)?;
    for r in &runs {
        let _ = std::fs::remove_file(r);
    }
    Ok(PreprocessStats {
        input_bytes,
        ..stats
    })
}

/// Convert an in-memory edge list (sorting in memory) into the on-disk
/// format. Used for inputs that fit in RAM and by the test fixtures.
pub fn edges_to_csr<Q: AsRef<Path>>(
    el: EdgeList,
    output: Q,
    opts: &PreprocessOptions,
) -> io::Result<PreprocessStats> {
    let output = output.as_ref();
    let csr = Csr::from_edge_list(&el);
    if opts.compress {
        DiskCsrWriter::write_compressed(output, &csr)?;
    } else {
        DiskCsrWriter::write(output, &csr, opts.with_degrees)?;
    }
    Ok(PreprocessStats {
        n_vertices: el.n_vertices,
        n_edges: el.len(),
        runs: 1,
        input_bytes: (el.len() * 8) as u64,
        output_bytes: std::fs::metadata(output)?.len(),
        index_bytes: std::fs::metadata(disk_csr::index_path(output))?.len(),
        compressed: opts.compress,
    })
}

fn read_run<R: Read>(reader: &mut R, cap: usize) -> io::Result<Vec<Edge>> {
    let mut run = Vec::new();
    let mut buf = [0u8; 8];
    while run.len() < cap {
        match read_exact_or_eof(reader, &mut buf)? {
            false => break,
            true => {
                let src = u32::from_le_bytes(buf[0..4].try_into().unwrap());
                let dst = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                run.push(Edge { src, dst });
            }
        }
    }
    Ok(run)
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8; 8]) -> io::Result<bool> {
    match reader.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

fn write_run(path: &Path, run: &[Edge]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for e in run {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
    }
    w.flush()
}

/// Streaming merge of sorted run files into the CSR body + index.
fn merge_runs_to_csr(
    runs: &[PathBuf],
    n_vertices: usize,
    n_edges: usize,
    output: &Path,
    opts: &PreprocessOptions,
) -> io::Result<PreprocessStats> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    struct RunHead {
        next: Edge,
        reader: BufReader<File>,
    }

    let mut heap: BinaryHeap<Reverse<(Edge, usize)>> = BinaryHeap::new();
    let mut heads: Vec<Option<RunHead>> = Vec::new();
    for path in runs {
        let mut reader = BufReader::new(File::open(path)?);
        let mut buf = [0u8; 8];
        if read_exact_or_eof(&mut reader, &mut buf)? {
            let next = Edge {
                src: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                dst: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            };
            heap.push(Reverse((next, heads.len())));
            heads.push(Some(RunHead { next, reader }));
        } else {
            heads.push(None);
        }
    }

    // Write header + body, tracking per-vertex record offsets for the
    // index. The merge buffers one vertex's targets at a time (`pending`),
    // so the v2 path can encode the whole run before writing it.
    let version = if opts.compress { 2 } else { 1 };
    let mut out = BufWriter::new(File::create(output)?);
    let flags: u32 = if opts.with_degrees && !opts.compress {
        1
    } else {
        0
    };
    disk_csr::write_data_header(&mut out, version, flags, n_vertices as u64, n_edges as u64)?;

    let mut idx = BufWriter::new(File::create(disk_csr::index_path(output))?);
    disk_csr::write_index_header(&mut idx, version, n_vertices as u64)?;

    let mut word_off: u64 = 0; // v1: words; v2: bytes
    let mut edge_off: u64 = 0;
    let mut run_buf: Vec<u8> = Vec::new();
    let mut current: VertexId = 0;
    let mut pending: Vec<VertexId> = Vec::new();
    let mut flush_vertex = |out: &mut BufWriter<File>,
                            idx: &mut BufWriter<File>,
                            word_off: &mut u64,
                            targets: &mut Vec<VertexId>|
     -> io::Result<()> {
        idx.write_all(&word_off.to_le_bytes())?;
        if opts.compress {
            idx.write_all(&edge_off.to_le_bytes())?;
            run_buf.clear();
            varint::encode_run(targets, &mut run_buf);
            out.write_all(&run_buf)?;
            *word_off += run_buf.len() as u64;
            edge_off += targets.len() as u64;
            targets.clear();
            return Ok(());
        }
        if opts.with_degrees {
            out.write_all(&(targets.len() as u32).to_le_bytes())?;
            *word_off += 1;
        }
        for &t in targets.iter() {
            out.write_all(&t.to_le_bytes())?;
            *word_off += 1;
        }
        out.write_all(&SEPARATOR.to_le_bytes())?;
        *word_off += 1;
        targets.clear();
        Ok(())
    };

    while let Some(Reverse((edge, run_i))) = heap.pop() {
        // Emit records for every vertex with id < edge.src first.
        while current < edge.src {
            flush_vertex(&mut out, &mut idx, &mut word_off, &mut pending)?;
            current += 1;
        }
        pending.push(edge.dst);
        // Refill from this run.
        let head = heads[run_i].as_mut().expect("run active");
        let mut buf = [0u8; 8];
        if read_exact_or_eof(&mut head.reader, &mut buf)? {
            let next = Edge {
                src: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                dst: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            };
            head.next = next;
            heap.push(Reverse((next, run_i)));
        } else {
            heads[run_i] = None;
        }
    }
    // Flush the final vertex and any isolated tail vertices.
    while (current as usize) < n_vertices {
        flush_vertex(&mut out, &mut idx, &mut word_off, &mut pending)?;
        current += 1;
    }
    idx.write_all(&word_off.to_le_bytes())?;
    if opts.compress {
        idx.write_all(&edge_off.to_le_bytes())?;
    }
    out.flush()?;
    idx.flush()?;

    Ok(PreprocessStats {
        n_vertices,
        n_edges,
        runs: runs.len().max(1),
        input_bytes: 0,
        output_bytes: std::fs::metadata(output)?.len(),
        index_bytes: std::fs::metadata(disk_csr::index_path(output))?.len(),
        compressed: opts.compress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk_csr::DiskCsr;
    use crate::generate;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-prep-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn text_pipeline_end_to_end() {
        let dir = tmpdir("text");
        let el = generate::rmat(200, 1000, generate::RmatParams::default(), 5);
        let txt = dir.join("g.txt");
        el.write_text_file(&txt).unwrap();
        let out = dir.join("g.gcsr");
        let stats = text_to_csr(&txt, &out, &PreprocessOptions::default()).unwrap();
        assert_eq!(stats.n_edges, 1000);
        let d = DiskCsr::open(&out).unwrap();
        assert_eq!(d.n_edges(), 1000);
        assert_eq!(d.n_vertices(), el.n_vertices);
    }

    #[test]
    fn external_sort_matches_in_memory_sort() {
        for compress in [false, true] {
            let dir = tmpdir(if compress { "ext-v2" } else { "ext-v1" });
            let el = generate::rmat(300, 5000, generate::RmatParams::default(), 9);
            let bin = dir.join("g.bin");
            el.write_binary_file(&bin).unwrap();

            // Tiny run capacity forces many runs + a real merge.
            let opts = PreprocessOptions {
                run_capacity: 137,
                compress,
                temp_dir: Some(dir.clone()),
                ..Default::default()
            };
            let ext_out = dir.join("ext.gcsr");
            let stats = binary_to_csr(&bin, &ext_out, &opts).unwrap();
            assert!(stats.runs > 10, "expected many runs, got {}", stats.runs);
            assert_eq!(stats.n_edges, 5000);
            assert_eq!(stats.compressed, compress);

            let mem_out = dir.join("mem.gcsr");
            edges_to_csr(el, &mem_out, &opts).unwrap();

            let a = DiskCsr::open(&ext_out).unwrap();
            let b = DiskCsr::open(&mem_out).unwrap();
            assert_eq!(a.compressed(), compress);
            assert_eq!(a.n_vertices(), b.n_vertices());
            assert_eq!(a.n_edges(), b.n_edges());
            a.validate().unwrap();
            for v in 0..a.n_vertices() as VertexId {
                let (mut ta, mut tb) = (a.targets(v), b.targets(v));
                // Dst order within a vertex may differ between the two
                // paths; the multiset must match.
                ta.sort_unstable();
                tb.sort_unstable();
                assert_eq!(ta, tb, "vertex {v} adjacency differs");
            }
        }
    }

    #[test]
    fn empty_binary_input() {
        let dir = tmpdir("empty");
        let bin = dir.join("empty.bin");
        std::fs::write(&bin, b"").unwrap();
        let out = dir.join("empty.gcsr");
        let stats = binary_to_csr(&bin, &out, &PreprocessOptions::default()).unwrap();
        assert_eq!(stats.n_edges, 0);
        assert_eq!(stats.n_vertices, 0);
        let d = DiskCsr::open(&out).unwrap();
        assert_eq!(d.n_vertices(), 0);
    }

    #[test]
    fn isolated_tail_vertices_get_empty_records() {
        // Max id is 9 but only vertex 0 has edges; 1..=9 need records too.
        let dir = tmpdir("tail");
        let el = EdgeList::from_edges(vec![Edge::new(0, 9)]);
        let bin = dir.join("tail.bin");
        el.write_binary_file(&bin).unwrap();
        let out = dir.join("tail.gcsr");
        let stats = binary_to_csr(&bin, &out, &PreprocessOptions::default()).unwrap();
        assert_eq!(stats.n_vertices, 10);
        let d = DiskCsr::open(&out).unwrap();
        assert_eq!(d.targets(0), &[9]);
        for v in 1..10 {
            assert!(d.targets(v).is_empty());
        }
    }

    #[test]
    fn compressed_default_beats_v1_on_power_law() {
        // The tentpole gate in unit-test form: a power-law graph's v2 edge
        // file is well under the v1 layout's size.
        let dir = tmpdir("v2-ratio");
        let el = generate::rmat(2000, 40_000, generate::RmatParams::default(), 7);
        let v2 = dir.join("v2.gcsr");
        let s2 = edges_to_csr(el.clone(), &v2, &PreprocessOptions::default()).unwrap();
        let v1 = dir.join("v1.gcsr");
        let s1 = edges_to_csr(el, &v1, &PreprocessOptions::uncompressed()).unwrap();
        assert!(s2.compressed && !s1.compressed);
        assert_eq!(s1.output_bytes, s1.v1_equivalent_bytes());
        let ratio = s1.output_bytes as f64 / s2.output_bytes as f64;
        assert!(
            ratio >= 1.5,
            "v2 should be >= 1.5x smaller: v1 {} vs v2 {} ({ratio:.2}x)",
            s1.output_bytes,
            s2.output_bytes
        );
        assert!((s2.compression_ratio() - ratio).abs() < 1e-9);
    }

    #[test]
    fn compression_vs_text() {
        // The paper: CSR compressed twitter from 26GB (text) to 6.5GB.
        // Shape check: binary CSR is much smaller than the text edge list.
        let dir = tmpdir("compress");
        let el = generate::rmat(5000, 100_000, generate::RmatParams::default(), 11);
        let txt = dir.join("big.txt");
        el.write_text_file(&txt).unwrap();
        let out = dir.join("big.gcsr");
        let stats = text_to_csr(&txt, &out, &PreprocessOptions::default()).unwrap();
        assert!(
            (stats.output_bytes as f64) < stats.input_bytes as f64 * 0.8,
            "CSR ({}) should be clearly smaller than the text edge list ({})",
            stats.output_bytes,
            stats.input_bytes
        );
    }
}
