//! Core graph value types.

/// Vertex identifier. The paper assumes vertices are labeled `0..|V|` with
/// 32-bit ids (the twitter-2010 graph has 41.6M vertices, well within
/// `u32`).
pub type VertexId = u32;

/// End-of-adjacency-list marker in the on-disk CSR edge array.
///
/// The paper writes `-1`; we use `u32::MAX`, the same bit pattern, which
/// also means real vertex ids must stay below `u32::MAX`.
pub const SEPARATOR: u32 = u32::MAX;

/// A directed edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Construct an edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// The edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ordering_is_src_major() {
        let mut v = vec![
            Edge::new(2, 0),
            Edge::new(0, 5),
            Edge::new(0, 1),
            Edge::new(1, 9),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 5),
                Edge::new(1, 9),
                Edge::new(2, 0)
            ]
        );
    }

    #[test]
    fn reversed_swaps_endpoints() {
        assert_eq!(Edge::new(3, 7).reversed(), Edge::new(7, 3));
    }

    #[test]
    fn separator_is_all_ones() {
        assert_eq!(SEPARATOR, 0xFFFF_FFFF);
        assert_eq!(SEPARATOR as i32, -1); // the paper's -1
    }
}
