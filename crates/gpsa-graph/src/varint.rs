//! LEB128 varint + zigzag-delta coding for the v2 compressed edge format.
//!
//! A v2 vertex record is its target list coded as: the first target as a
//! raw LEB128 varint, every subsequent target as the zigzag-coded *delta*
//! from its predecessor. Deltas (not absolute ids) is what makes
//! power-law CSR bodies small — neighbor lists cluster, so most deltas fit
//! in one byte — and zigzag keeps the coding order-preserving: targets are
//! written back in exactly the order the preprocessor saw them, so the
//! decoded message stream is bit-identical to the uncompressed one even
//! when a list is not sorted.

/// Decode failure inside one varint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The byte run ended in the middle of a varint.
    Truncated,
    /// A varint used more than 10 bytes (no `u64` needs more).
    Overlong,
    /// A decoded target fell outside the `u32` vertex-id space.
    OutOfRange,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "byte run truncated mid-varint"),
            VarintError::Overlong => write!(f, "varint longer than 10 bytes"),
            VarintError::OutOfRange => write!(f, "decoded target outside the u32 id space"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Map a signed delta onto an unsigned varint payload (zigzag: small
/// magnitudes of either sign get small codes).
#[inline]
pub fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append `v` to `out` as a LEB128 varint (7 bits per byte, low first).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Multi-byte continuation of the varint read; the caller has already
/// seen the first byte `>= 0x80` at `*pos`.
#[cold]
fn read_u64_slow(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(VarintError::Overlong);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Read one LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
#[inline]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let b = *bytes.get(*pos).ok_or(VarintError::Truncated)?;
    if b < 0x80 {
        *pos += 1;
        Ok(b as u64)
    } else {
        read_u64_slow(bytes, pos)
    }
}

/// Continuation bits of every byte in a little-endian word.
const MSB_MASK: u64 = 0x8080_8080_8080_8080;

/// Word-at-a-time variant of [`read_u64`]: when at least 8 bytes remain,
/// one unaligned load finds the varint's stop byte with `trailing_zeros`
/// and extracts the payload without a per-byte loop. Delta streams on
/// power-law graphs average 2–3 bytes per varint, so a single-byte fast
/// path mispredicts constantly; the word path costs the same for lengths
/// 1 through 8. Falls back to the byte loop within 8 bytes of the slice
/// end and for 9–10 byte varints.
#[inline]
fn read_u64_word(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let p = *pos;
    if let Some(window) = bytes.get(p..p + 8) {
        let w = u64::from_le_bytes(window.try_into().expect("window is 8 bytes"));
        let stops = !w & MSB_MASK;
        if stops != 0 {
            let stop_bit = stops.trailing_zeros(); // 8*(len-1) + 7
            *pos = p + 1 + (stop_bit >> 3) as usize;
            return Ok(pack7(w & (u64::MAX >> (63 - stop_bit))));
        }
        // 8 continuation bytes: a 9–10 byte varint, vanishingly rare.
    }
    read_u64(bytes, pos)
}

/// Gather the low 7 bits of each byte of `w` into one value (LEB128
/// payload extraction, low group first). Branchless SWAR merge: adjacent
/// payload groups are packed pairwise — bytes into 14-bit halves of
/// 16-bit lanes, those into 28-bit halves of 32-bit lanes, those into a
/// 56-bit value — so the cost is constant whatever the varint's length.
/// Bytes past the stop byte must already be masked to zero.
#[inline]
fn pack7(w: u64) -> u64 {
    let x = w & 0x7F7F_7F7F_7F7F_7F7F;
    let x = (x & 0x007F_007F_007F_007F) | ((x & 0x7F00_7F00_7F00_7F00) >> 1);
    let x = (x & 0x0000_3FFF_0000_3FFF) | ((x & 0x3FFF_0000_3FFF_0000) >> 2);
    (x & 0x0000_0000_0FFF_FFFF) | ((x & 0x0FFF_FFFF_0000_0000) >> 4)
}

/// Encode one vertex's target list as a v2 byte run (first target raw,
/// rest as zigzag deltas), appending to `out`. Target order is preserved
/// exactly. An empty list encodes to zero bytes.
pub fn encode_run(targets: &[u32], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    for (i, &t) in targets.iter().enumerate() {
        if i == 0 {
            write_u64(out, t as u64);
        } else {
            write_u64(out, zigzag(t as i64 - prev));
        }
        prev = t as i64;
    }
}

/// Decode a v2 byte run of exactly `degree` targets from `bytes`,
/// appending them to `out`. Returns the number of bytes consumed.
///
/// The loop is the engine's hot decode path. The targets land in a
/// pre-sized slice tail so the inner loop carries no per-target
/// capacity or bounds checks — only the decode itself, which reads each
/// varint word-at-a-time ([`read_u64_word`]) so 1-to-8-byte codes all
/// take the same branch-light path.
#[inline]
pub fn decode_run(bytes: &[u8], degree: usize, out: &mut Vec<u32>) -> Result<usize, VarintError> {
    let start = out.len();
    out.resize(start + degree, 0);
    match decode_run_into(bytes, &mut out[start..]) {
        Ok(used) => Ok(used),
        Err(e) => {
            out.truncate(start);
            Err(e)
        }
    }
}

/// Decode exactly `dst.len()` targets from `bytes` into `dst`.
fn decode_run_into(bytes: &[u8], dst: &mut [u32]) -> Result<usize, VarintError> {
    let Some((first, rest)) = dst.split_first_mut() else {
        return Ok(0);
    };
    let mut pos = 0usize;
    let raw = read_u64_word(bytes, &mut pos)?;
    if raw > u32::MAX as u64 {
        return Err(VarintError::OutOfRange);
    }
    *first = raw as u32;
    let mut prev = raw as i64;
    // Range validation is deferred to one run-level flag so the loop body
    // stays branchless: a wrapped or out-of-range target always lands
    // outside `0..=u32::MAX` when viewed as unsigned (`prev` is in-range,
    // so a wrapping add can only leave the id space, never re-enter it),
    // and a poisoned `prev` only ever produces more flagged targets.
    let mut bad = false;
    let n = rest.len();
    let mut i = 0;
    // Word-at-a-time region: one unaligned load per 8 bytes, then every
    // varint whose stop byte landed in the word is extracted from the
    // register with shifts — at 2–3 bytes per delta that amortizes the
    // load and the serial position update over ~3 targets. A varint
    // straddling the word end is left for the next load (the position
    // only advances past complete varints).
    while i < n {
        let Some(window) = bytes.get(pos..pos + 8) else {
            break; // tail: fewer than 8 bytes left
        };
        let w = u64::from_le_bytes(window.try_into().expect("window is 8 bytes"));
        let mut stops = !w & MSB_MASK;
        if stops == 0 {
            // A 9–10 byte varint (or corruption): byte-loop just this one.
            let raw = read_u64(bytes, &mut pos)?;
            let t = prev.wrapping_add(unzigzag(raw));
            bad |= t as u64 > u32::MAX as u64;
            rest[i] = t as u32;
            prev = t;
            i += 1;
            continue;
        }
        let mut start = 0u32; // bit offset of the current varint in `w`
        while stops != 0 && i < n {
            let stop = stops.trailing_zeros(); // 8k + 7
            let raw = pack7((w >> start) & (u64::MAX >> (63 - (stop - start))));
            let t = prev.wrapping_add(unzigzag(raw));
            bad |= t as u64 > u32::MAX as u64;
            rest[i] = t as u32;
            prev = t;
            i += 1;
            stops &= stops - 1;
            start = stop + 1; // stop bit is a byte's msb, so +1 is byte-aligned
        }
        pos += (start >> 3) as usize;
    }
    // Tail: per-target reads with the byte-loop fallback near the end.
    while i < n {
        let raw = read_u64_word(bytes, &mut pos)?;
        let t = prev.wrapping_add(unzigzag(raw));
        bad |= t as u64 > u32::MAX as u64;
        rest[i] = t as u32;
        prev = t;
        i += 1;
    }
    if bad {
        return Err(VarintError::OutOfRange);
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(targets: &[u32]) {
        let mut buf = Vec::new();
        encode_run(targets, &mut buf);
        let mut back = Vec::new();
        let used = decode_run(&buf, targets.len(), &mut back).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, targets);
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, u32::MAX as i64] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Small magnitudes get small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn word_reader_agrees_with_byte_reader() {
        // One value per encoded length 1..=10, at both a word-eligible
        // offset (≥ 8 bytes remain) and flush against the buffer end
        // (byte-loop fallback).
        let vals: Vec<u64> = (0..10)
            .map(|k| if k == 0 { 5 } else { 1u64 << (7 * k) })
            .chain([127, 128, u32::MAX as u64, u64::MAX])
            .collect();
        for v in vals {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let padded: Vec<u8> = buf.iter().copied().chain([0u8; 8]).collect();
            for bytes in [&buf, &padded] {
                let mut pos = 0;
                assert_eq!(read_u64_word(bytes, &mut pos).unwrap(), v);
                assert_eq!(pos, buf.len());
            }
        }
        // Truncation still detected through the word path.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            read_u64_word(&buf[..buf.len() - 1], &mut pos),
            Err(VarintError::Truncated)
        );
    }

    #[test]
    fn run_roundtrips_shapes() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[7, 8, 9, 10]); // ascending, 1-byte deltas
        roundtrip(&[1000, 3, 999_999, 0]); // unsorted: order preserved
                                           // Max-magnitude ids and deltas in both directions.
        roundtrip(&[u32::MAX - 1, 0, u32::MAX - 1, u32::MAX - 1]);
        roundtrip(&[u32::MAX]);
        // A dense hub run.
        let hub: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        roundtrip(&hub);
    }

    #[test]
    fn mixed_length_runs_roundtrip() {
        // Deterministic LCG mixing 1–5 byte deltas in both directions so
        // varints straddle the 8-byte word boundary at every phase.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..50 {
            let len = 1 + (rng() % 97) as usize;
            let mut targets = Vec::with_capacity(len);
            for _ in 0..len {
                // Spread magnitudes across varint lengths.
                let shift = rng() % 28;
                targets.push((rng() as u32) >> shift);
            }
            roundtrip(&targets);
        }
    }

    #[test]
    fn sorted_runs_compress() {
        // 1000 clustered ascending targets: deltas fit in one byte each.
        let targets: Vec<u32> = (0..1000u32).map(|i| 5_000_000 + 2 * i).collect();
        let mut buf = Vec::new();
        encode_run(&targets, &mut buf);
        assert!(
            buf.len() < 1010,
            "expected ~1 byte/edge, got {} bytes",
            buf.len()
        );
    }

    #[test]
    fn truncated_and_overlong_rejected() {
        let mut buf = Vec::new();
        encode_run(&[500_000, 600_000], &mut buf);
        let mut out = Vec::new();
        // Cut mid-varint.
        assert_eq!(
            decode_run(&buf[..buf.len() - 1], 2, &mut out),
            Err(VarintError::Truncated)
        );
        // Ask for more targets than the run holds.
        out.clear();
        assert_eq!(decode_run(&buf, 3, &mut out), Err(VarintError::Truncated));
        // 11 continuation bytes can't be a u64.
        out.clear();
        assert_eq!(
            decode_run(&[0xFF; 11], 1, &mut out),
            Err(VarintError::Overlong)
        );
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1); // first target too big
        let mut out = Vec::new();
        assert_eq!(decode_run(&buf, 1, &mut out), Err(VarintError::OutOfRange));

        // Delta walking below zero.
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        write_u64(&mut buf, zigzag(-6));
        out.clear();
        assert_eq!(decode_run(&buf, 2, &mut out), Err(VarintError::OutOfRange));
    }
}
