//! LEB128 varint + zigzag-delta coding for the v2 compressed edge format.
//!
//! A v2 vertex record is its target list coded as: the first target as a
//! raw LEB128 varint, every subsequent target as the zigzag-coded *delta*
//! from its predecessor. Deltas (not absolute ids) is what makes
//! power-law CSR bodies small — neighbor lists cluster, so most deltas fit
//! in one byte — and zigzag keeps the coding order-preserving: targets are
//! written back in exactly the order the preprocessor saw them, so the
//! decoded message stream is bit-identical to the uncompressed one even
//! when a list is not sorted.

/// Decode failure inside one varint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The byte run ended in the middle of a varint.
    Truncated,
    /// A varint used more than 10 bytes (no `u64` needs more).
    Overlong,
    /// A decoded target fell outside the `u32` vertex-id space.
    OutOfRange,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "byte run truncated mid-varint"),
            VarintError::Overlong => write!(f, "varint longer than 10 bytes"),
            VarintError::OutOfRange => write!(f, "decoded target outside the u32 id space"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Map a signed delta onto an unsigned varint payload (zigzag: small
/// magnitudes of either sign get small codes).
#[inline]
pub fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append `v` to `out` as a LEB128 varint (7 bits per byte, low first).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Multi-byte continuation of the varint read; the caller has already
/// seen the first byte `>= 0x80` at `*pos`.
#[cold]
fn read_u64_slow(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(VarintError::Overlong);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Read one LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
#[inline]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let b = *bytes.get(*pos).ok_or(VarintError::Truncated)?;
    if b < 0x80 {
        *pos += 1;
        Ok(b as u64)
    } else {
        read_u64_slow(bytes, pos)
    }
}

/// Encode one vertex's target list as a v2 byte run (first target raw,
/// rest as zigzag deltas), appending to `out`. Target order is preserved
/// exactly. An empty list encodes to zero bytes.
pub fn encode_run(targets: &[u32], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    for (i, &t) in targets.iter().enumerate() {
        if i == 0 {
            write_u64(out, t as u64);
        } else {
            write_u64(out, zigzag(t as i64 - prev));
        }
        prev = t as i64;
    }
}

/// Decode a v2 byte run of exactly `degree` targets from `bytes`,
/// appending them to `out`. Returns the number of bytes consumed.
///
/// The loop is the engine's hot decode path: one branch-predictable
/// single-byte fast path per target, with the multi-byte continuation
/// out-of-line ([`read_u64_slow`] is `#[cold]`).
#[inline]
pub fn decode_run(bytes: &[u8], degree: usize, out: &mut Vec<u32>) -> Result<usize, VarintError> {
    out.reserve(degree);
    let mut pos = 0usize;
    let mut prev: i64 = 0;
    for i in 0..degree {
        let raw = read_u64(bytes, &mut pos)?;
        let t = if i == 0 {
            if raw > u32::MAX as u64 {
                return Err(VarintError::OutOfRange);
            }
            raw as i64
        } else {
            let t = prev
                .checked_add(unzigzag(raw))
                .ok_or(VarintError::OutOfRange)?;
            if t < 0 || t > u32::MAX as i64 {
                return Err(VarintError::OutOfRange);
            }
            t
        };
        out.push(t as u32);
        prev = t;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(targets: &[u32]) {
        let mut buf = Vec::new();
        encode_run(targets, &mut buf);
        let mut back = Vec::new();
        let used = decode_run(&buf, targets.len(), &mut back).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, targets);
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, u32::MAX as i64] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Small magnitudes get small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn run_roundtrips_shapes() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[7, 8, 9, 10]); // ascending, 1-byte deltas
        roundtrip(&[1000, 3, 999_999, 0]); // unsorted: order preserved
                                           // Max-magnitude ids and deltas in both directions.
        roundtrip(&[u32::MAX - 1, 0, u32::MAX - 1, u32::MAX - 1]);
        roundtrip(&[u32::MAX]);
        // A dense hub run.
        let hub: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        roundtrip(&hub);
    }

    #[test]
    fn sorted_runs_compress() {
        // 1000 clustered ascending targets: deltas fit in one byte each.
        let targets: Vec<u32> = (0..1000u32).map(|i| 5_000_000 + 2 * i).collect();
        let mut buf = Vec::new();
        encode_run(&targets, &mut buf);
        assert!(
            buf.len() < 1010,
            "expected ~1 byte/edge, got {} bytes",
            buf.len()
        );
    }

    #[test]
    fn truncated_and_overlong_rejected() {
        let mut buf = Vec::new();
        encode_run(&[500_000, 600_000], &mut buf);
        let mut out = Vec::new();
        // Cut mid-varint.
        assert_eq!(
            decode_run(&buf[..buf.len() - 1], 2, &mut out),
            Err(VarintError::Truncated)
        );
        // Ask for more targets than the run holds.
        out.clear();
        assert_eq!(decode_run(&buf, 3, &mut out), Err(VarintError::Truncated));
        // 11 continuation bytes can't be a u64.
        out.clear();
        assert_eq!(
            decode_run(&[0xFF; 11], 1, &mut out),
            Err(VarintError::Overlong)
        );
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1); // first target too big
        let mut out = Vec::new();
        assert_eq!(decode_run(&buf, 1, &mut out), Err(VarintError::OutOfRange));

        // Delta walking below zero.
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        write_u64(&mut buf, zigzag(-6));
        out.clear();
        assert_eq!(decode_run(&buf, 2, &mut out), Err(VarintError::OutOfRange));
    }
}
