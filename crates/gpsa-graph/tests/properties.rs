//! Property tests for the graph substrate: format roundtrips, CSR
//! equivalences, generator and partitioner invariants.

use gpsa_graph::{generate, preprocess, Csr, DiskCsr, Edge, EdgeList, SEPARATOR};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gpsa-graph-prop-{}-{case}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=200).prop_map(move |pairs| {
            EdgeList::with_vertices(pairs.into_iter().map(|(a, b)| Edge::new(a, b)).collect(), n)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn text_format_roundtrips(el in arb_graph()) {
        let mut buf = Vec::new();
        el.write_text(&mut buf).unwrap();
        let back = EdgeList::read_text(&buf[..]).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn binary_format_roundtrips_edges(el in arb_graph()) {
        let mut buf = Vec::new();
        el.write_binary(&mut buf).unwrap();
        let back = EdgeList::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn csr_preserves_edge_multiset(el in arb_graph()) {
        let csr = Csr::from_edge_list(&el);
        prop_assert_eq!(csr.n_edges(), el.len());
        let mut got: Vec<Edge> = csr.edges().collect();
        let mut want = el.edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Degrees sum to edge count.
        let total: u64 = (0..el.n_vertices as u32).map(|v| csr.out_degree(v) as u64).sum();
        prop_assert_eq!(total as usize, el.len());
    }

    #[test]
    fn transpose_is_involutive_up_to_neighbor_order(el in arb_graph()) {
        let csr = Csr::from_edge_list(&el);
        let tt = csr.transpose().transpose();
        prop_assert_eq!(tt.n_vertices(), csr.n_vertices());
        prop_assert_eq!(tt.n_edges(), csr.n_edges());
        for v in 0..csr.n_vertices() as u32 {
            let mut a = tt.neighbors(v).to_vec();
            let mut b = csr.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "vertex {}", v);
        }
    }

    #[test]
    fn disk_csr_equals_in_memory_csr(
        el in arb_graph(),
        with_deg in any::<bool>(),
        compress in any::<bool>(),
    ) {
        let dir = tmpdir();
        let path = dir.join("g.gcsr");
        let opts = preprocess::PreprocessOptions {
            with_degrees: with_deg,
            compress,
            ..Default::default()
        };
        preprocess::edges_to_csr(el.clone(), &path, &opts).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        let mem = Csr::from_edge_list(&el);
        prop_assert_eq!(disk.n_vertices(), mem.n_vertices());
        prop_assert_eq!(disk.n_edges(), mem.n_edges());
        prop_assert_eq!(disk.compressed(), compress);
        if !compress {
            // v1 only: v2 always carries degrees in its index.
            prop_assert_eq!(disk.with_degrees(), with_deg);
        }
        // Cursor streaming and random access agree with the in-memory CSR.
        let mut streamed_edges = 0usize;
        let mut scratch = Vec::new();
        let mut cursor = disk.cursor(0..disk.n_vertices() as u32);
        while let Some(rec) = cursor.next_rec() {
            prop_assert_eq!(rec.targets, mem.neighbors(rec.vid));
            prop_assert_eq!(rec.degree, mem.out_degree(rec.vid));
            let (vid, degree, targets) = (rec.vid, rec.degree, rec.targets.to_vec());
            streamed_edges += targets.len();
            // No separator leaks into targets.
            prop_assert!(targets.iter().all(|&t| t != SEPARATOR));
            let direct = disk.record_into(vid, &mut scratch);
            prop_assert_eq!(direct.vid, vid);
            prop_assert_eq!(direct.degree, degree);
            prop_assert_eq!(direct.targets, &targets[..]);
        }
        prop_assert_eq!(streamed_edges, el.len());
    }

    #[test]
    fn external_sort_agrees_with_in_memory(el in arb_graph(), cap in 1usize..64) {
        let dir = tmpdir();
        let bin = dir.join("g.bin");
        el.write_binary_file(&bin).unwrap();
        let opts = preprocess::PreprocessOptions {
            run_capacity: cap,
            with_degrees: true,
            temp_dir: Some(dir.clone()),
            ..Default::default()
        };
        let ext = dir.join("ext.gcsr");
        preprocess::binary_to_csr(&bin, &ext, &opts).unwrap();
        let disk = DiskCsr::open(&ext).unwrap();
        let mem = Csr::from_edge_list(&el);
        // The binary path derives n from the max id seen, so compare the
        // covered prefix; the tail must be edge-free.
        prop_assert!(disk.n_vertices() <= mem.n_vertices());
        for v in 0..disk.n_vertices() as u32 {
            let mut got = disk.targets(v);
            let mut want = mem.neighbors(v).to_vec();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        for v in disk.n_vertices()..mem.n_vertices() {
            prop_assert_eq!(mem.out_degree(v as u32), 0);
        }
    }

    #[test]
    fn uniform_intervals_tile(n in 0usize..500, k in 1usize..20) {
        // (Re-exported from gpsa-core's partition module in spirit; here we
        // check the analogous graph-side invariant on edge-balanced shards
        // via DiskCsr ranges.)
        let el = generate::erdos_renyi(n.max(2), n * 2 + 4, 1);
        let dir = tmpdir();
        let path = dir.join("g.gcsr");
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        // edges_in_range is additive over a tiling.
        let nv = disk.n_vertices() as u32;
        let step = (nv / k as u32).max(1);
        let mut total = 0u64;
        let mut start = 0u32;
        while start < nv {
            let end = (start + step).min(nv);
            total += disk.edges_in_range(start..end);
            start = end;
        }
        prop_assert_eq!(total as usize, disk.n_edges());
    }

    #[test]
    fn rmat_respects_bounds(nv in 2usize..200, ne in 1usize..500, seed in any::<u64>()) {
        let el = generate::rmat(nv, ne, generate::RmatParams::default(), seed);
        prop_assert_eq!(el.len(), ne);
        prop_assert_eq!(el.n_vertices, nv);
        prop_assert!(el.edges.iter().all(|e| (e.src as usize) < nv && (e.dst as usize) < nv));
        prop_assert!(el.edges.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn symmetrize_makes_every_edge_bidirectional(el in arb_graph()) {
        let s = generate::symmetrize(&el);
        let set: std::collections::HashSet<(u32, u32)> =
            s.edges.iter().map(|e| (e.src, e.dst)).collect();
        for e in &s.edges {
            if e.src != e.dst {
                prop_assert!(set.contains(&(e.dst, e.src)));
            }
        }
    }
}
