//! The v2 delta-varint edge format, attacked from the outside: round-trip
//! properties over adversarial degree distributions (empty vertices,
//! degree-0 tails, high-degree hubs, wide id gaps), and the typed-error
//! contract for version skew and mid-record corruption — a reader must
//! say *which vertex* is damaged, never panic on a magic word.

use std::path::{Path, PathBuf};

use gpsa_graph::disk_csr::{CsrFormatError, DiskCsr, DiskCsrWriter, VERSION_V2};
use gpsa_graph::{Csr, Edge, EdgeList, VertexId};
use proptest::prelude::*;

const HEADER_BYTES: u64 = 32;

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-v2fmt-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_v2(name: &str, el: &EdgeList) -> (PathBuf, Csr) {
    let csr = Csr::from_edge_list(el);
    let path = tmpdir().join(name);
    DiskCsrWriter::write_compressed(&path, &csr).unwrap();
    (path, csr)
}

/// Compare a reopened v2 file against the in-memory CSR it came from, via
/// every read path: O(1) degrees, point lookups, and the streaming cursor.
fn assert_roundtrip(disk: &DiskCsr, csr: &Csr) {
    assert_eq!(disk.version(), VERSION_V2);
    assert!(disk.compressed());
    assert_eq!(disk.n_vertices(), csr.n_vertices());
    assert_eq!(disk.n_edges(), csr.n_edges());
    disk.validate().unwrap();
    let mut scratch = Vec::new();
    for v in 0..csr.n_vertices() as VertexId {
        assert_eq!(disk.degree(v), csr.out_degree(v), "degree of {v}");
        let rec = disk.record_into(v, &mut scratch);
        assert_eq!(rec.targets, csr.neighbors(v), "targets of {v}");
    }
    let mut cursor = disk.cursor(0..csr.n_vertices() as VertexId);
    let mut seen = 0usize;
    while let Some(rec) = cursor.next_rec() {
        let vid = rec.vid;
        assert_eq!(rec.targets, csr.neighbors(vid), "cursor targets of {vid}");
        seen += 1;
    }
    assert_eq!(seen, csr.n_vertices());
}

/// Graphs biased toward the format's edge cases: a hub touching most of
/// the id space, interior empty vertices, and a run of trailing degree-0
/// vertices past the last edge.
fn arb_adversarial_graph() -> impl Strategy<Value = EdgeList> {
    (
        2usize..80, // vertices carrying edges
        proptest::collection::vec((0usize..80, 0usize..80), 0..=160),
        0usize..40, // hub fan-out
        0usize..30, // empty tail length
    )
        .prop_map(|(n, pairs, hub_deg, tail)| {
            let mut edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(s, d)| Edge::new((s % n) as VertexId, (d % n) as VertexId))
                .collect();
            // Vertex 0 becomes a hub: sorted fan-out across the id space,
            // the best case for delta coding — and a stress for run length.
            for t in 0..hub_deg.min(n) {
                edges.push(Edge::new(0, t as VertexId));
            }
            EdgeList::with_vertices(edges, n + tail)
        })
}

proptest! {
    #[test]
    fn v2_roundtrips_adversarial_graphs(el in arb_adversarial_graph()) {
        let (path, csr) = write_v2("prop.gcsr", &el);
        let disk = DiskCsr::open(&path).unwrap();
        assert_roundtrip(&disk, &csr);
    }
}

#[test]
fn v2_roundtrips_all_empty_vertices() {
    // No edges at all: the body is zero bytes, the index still has n+1
    // entries, and every degree is 0.
    let el = EdgeList::with_vertices(Vec::new(), 17);
    let (path, csr) = write_v2("empty.gcsr", &el);
    let disk = DiskCsr::open(&path).unwrap();
    assert_roundtrip(&disk, &csr);
    assert_eq!(disk.byte_offset(17), 0, "empty graph has an empty body");
}

#[test]
fn v2_roundtrips_wide_id_gaps() {
    // A sparse id space: ~1M vertices, a handful of edges with deltas
    // large enough to need 3-byte varints, and hundreds of thousands of
    // empty records on both sides of each occupied one.
    let n = 1 << 20;
    let hub = 500_000 as VertexId;
    let edges = vec![
        Edge::new(0, (n - 1) as VertexId), // max first-target varint
        Edge::new(hub, 1),
        Edge::new(hub, 3),
        Edge::new(hub, (n - 2) as VertexId), // huge in-run delta
        Edge::new((n - 1) as VertexId, 0),
    ];
    let el = EdgeList::with_vertices(edges, n);
    let (path, csr) = write_v2("gaps.gcsr", &el);
    let disk = DiskCsr::open(&path).unwrap();
    assert_eq!(disk.targets(0), vec![(n - 1) as VertexId]);
    assert_eq!(disk.targets(hub), vec![1, 3, (n - 2) as VertexId]);
    assert_eq!(disk.targets((n - 1) as VertexId), vec![0]);
    assert_eq!(disk.degree(250_000), 0);
    disk.validate().unwrap();
    assert_eq!(disk.n_edges(), csr.n_edges());
}

fn patch_file(path: &Path, offset: u64, bytes: &[u8]) {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(bytes).unwrap();
}

#[test]
fn future_version_reports_typed_error_not_panic() {
    let el = EdgeList::with_vertices(vec![Edge::new(0, 1), Edge::new(1, 0)], 2);
    let (path, _) = write_v2("future.gcsr", &el);
    // Stamp a version this reader does not know (a "v3 file" reaching an
    // old binary). The version word is header word 1.
    patch_file(&path, 4, &9u32.to_le_bytes());
    let err = DiskCsr::open(&path).unwrap_err();
    match CsrFormatError::from_io(&err) {
        Some(CsrFormatError::UnsupportedVersion {
            found: 9,
            max_supported,
        }) => {
            assert!(*max_supported >= VERSION_V2);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("version 9") && msg.contains("re-preprocess or upgrade"),
        "unhelpful message: {msg}"
    );
}

#[test]
fn corrupt_varint_run_names_the_vertex() {
    // Build a graph where vertex 5 has a multi-byte run, then stomp that
    // run with continuation bytes (0x80 forever = a varint that never
    // terminates). The reader must fail *typed*, naming vertex 5, on both
    // the point-lookup path and whole-file validation — neighbours'
    // records must stay readable.
    let n = 40usize;
    let mut edges: Vec<Edge> = (0..n as VertexId)
        .map(|v| Edge::new(v, (v + 1) % n as VertexId))
        .collect();
    edges.push(Edge::new(5, 20));
    edges.push(Edge::new(5, 39));
    let el = EdgeList::with_vertices(edges, n);
    let (path, _) = write_v2("corrupt.gcsr", &el);
    let clean = DiskCsr::open(&path).unwrap();
    let start = clean.byte_offset(5);
    let len = (clean.byte_offset(6) - start) as usize;
    assert!(len >= 2, "vertex 5 should have a multi-byte run");
    drop(clean);
    patch_file(&path, HEADER_BYTES + start, &vec![0x80u8; len]);

    let disk = DiskCsr::open(&path).unwrap(); // corruption is mid-body: open succeeds
    let mut scratch = Vec::new();
    match disk.try_record_into(5, &mut scratch) {
        Err(CsrFormatError::CorruptRun { vertex: 5, detail }) => {
            assert!(!detail.is_empty());
        }
        other => panic!("expected CorruptRun at vertex 5, got {other:?}"),
    }
    match disk.validate() {
        Err(CsrFormatError::CorruptRun { vertex: 5, .. }) => {}
        other => panic!("validate should blame vertex 5, got {other:?}"),
    }
    // Undamaged records on either side still decode.
    assert_eq!(disk.targets(4), vec![5]);
    assert_eq!(disk.targets(6), vec![7]);
}

#[test]
fn truncated_run_tail_is_reported_not_overread() {
    // A run whose final varint is cut short (last byte still has its
    // continuation bit set) must not read into the next vertex's record.
    let el = EdgeList::with_vertices(
        vec![Edge::new(0, 7), Edge::new(0, 300), Edge::new(1, 2)],
        400,
    );
    let (path, _) = write_v2("trunc.gcsr", &el);
    let clean = DiskCsr::open(&path).unwrap();
    let last = clean.byte_offset(1) - 1;
    drop(clean);
    patch_file(&path, HEADER_BYTES + last, &[0x80]);
    let disk = DiskCsr::open(&path).unwrap();
    let mut scratch = Vec::new();
    match disk.try_record_into(0, &mut scratch) {
        Err(CsrFormatError::CorruptRun { vertex: 0, .. }) => {}
        other => panic!("expected CorruptRun at vertex 0, got {other:?}"),
    }
    assert_eq!(disk.targets(1), vec![2], "vertex 1 must be unaffected");
}
