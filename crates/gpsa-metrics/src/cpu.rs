//! Process CPU accounting from `/proc`, for the paper's Fig. 11
//! (CPU utilization of the three systems).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A snapshot of this process's cumulative CPU time (user + system, all
/// threads), read from `/proc/self/stat`.
#[derive(Debug, Clone, Copy)]
pub struct ProcessCpu {
    /// Cumulative CPU time consumed by the process.
    pub cpu_time: Duration,
    /// Wall-clock instant the snapshot was taken.
    pub at: Instant,
}

fn ticks_per_second() -> u64 {
    // SAFETY: sysconf is always safe to call.
    let t = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    if t <= 0 {
        100
    } else {
        t as u64
    }
}

impl ProcessCpu {
    /// Take a snapshot now. Returns `None` if `/proc` is unavailable.
    pub fn snapshot() -> Option<ProcessCpu> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Field 2 (comm) may contain spaces; skip past the closing paren.
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // After comm: field[0]=state, ... utime is the 12th field after
        // comm (index 11), stime the 13th (index 12).
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        let tps = ticks_per_second();
        let secs = (utime + stime) as f64 / tps as f64;
        Some(ProcessCpu {
            cpu_time: Duration::from_secs_f64(secs),
            at: Instant::now(),
        })
    }

    /// CPU utilization between `self` (earlier) and `later`, expressed in
    /// *cores* (e.g. `3.5` means the process kept 3.5 cores busy on
    /// average).
    pub fn cores_used_until(&self, later: &ProcessCpu) -> f64 {
        let wall = later.at.duration_since(self.at).as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        (later.cpu_time.saturating_sub(self.cpu_time)).as_secs_f64() / wall
    }
}

/// Result of a monitored interval.
#[derive(Debug, Clone, Copy)]
pub struct CpuReport {
    /// Mean number of cores the process kept busy.
    pub mean_cores: f64,
    /// Peak cores observed over any sampling interval.
    pub peak_cores: f64,
    /// Mean utilization as a fraction of the whole machine (0.0–1.0).
    pub mean_machine_frac: f64,
    /// Number of logical CPUs used as the denominator.
    pub n_cpus: usize,
    /// Wall time monitored.
    pub wall: Duration,
}

/// Samples process CPU usage on a background thread until stopped.
pub struct CpuMonitor {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<f64>>>,
    start: ProcessCpu,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CpuMonitor {
    /// Start sampling every `interval`.
    pub fn start(interval: Duration) -> Option<CpuMonitor> {
        let start = ProcessCpu::snapshot()?;
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let stop2 = stop.clone();
        let samples2 = samples.clone();
        let handle = std::thread::Builder::new()
            .name("cpu-monitor".into())
            .spawn(move || {
                let mut prev = match ProcessCpu::snapshot() {
                    Some(s) => s,
                    None => return,
                };
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if let Some(now) = ProcessCpu::snapshot() {
                        samples2.lock().push(prev.cores_used_until(&now));
                        prev = now;
                    }
                }
            })
            .ok()?;
        Some(CpuMonitor {
            stop,
            samples,
            start,
            handle: Some(handle),
        })
    }

    /// Stop sampling and summarize.
    pub fn finish(mut self) -> CpuReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let end = ProcessCpu::snapshot().unwrap_or(ProcessCpu {
            cpu_time: self.start.cpu_time,
            at: Instant::now(),
        });
        let mean_cores = self.start.cores_used_until(&end);
        let samples = self.samples.lock();
        let peak = samples.iter().cloned().fold(mean_cores, f64::max);
        let n_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CpuReport {
            mean_cores,
            peak_cores: peak,
            mean_machine_frac: mean_cores / n_cpus as f64,
            n_cpus,
            wall: end.at.duration_since(self.start.at),
        }
    }
}

impl Drop for CpuMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_readable_on_linux() {
        let s = ProcessCpu::snapshot().expect("/proc/self/stat readable");
        assert!(s.cpu_time >= Duration::ZERO);
    }

    #[test]
    fn busy_loop_registers_cpu_usage() {
        let a = ProcessCpu::snapshot().unwrap();
        // Burn ~50ms of CPU.
        let t = Instant::now();
        let mut x = 0u64;
        while t.elapsed() < Duration::from_millis(50) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let b = ProcessCpu::snapshot().unwrap();
        let cores = a.cores_used_until(&b);
        assert!(cores > 0.2, "busy loop should register, got {cores}");
        assert!(
            cores < 8.0,
            "single thread cannot exceed a few cores: {cores}"
        );
    }

    #[test]
    fn monitor_reports_sane_numbers() {
        let mon = CpuMonitor::start(Duration::from_millis(10)).unwrap();
        let t = Instant::now();
        let mut x = 1u64;
        while t.elapsed() < Duration::from_millis(60) {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        }
        std::hint::black_box(x);
        let rep = mon.finish();
        assert!(rep.n_cpus >= 1);
        assert!(rep.mean_cores > 0.1, "mean {}", rep.mean_cores);
        assert!(rep.peak_cores >= rep.mean_cores * 0.5);
        assert!(rep.mean_machine_frac <= 1.5);
        assert!(rep.wall >= Duration::from_millis(50));
    }
}
