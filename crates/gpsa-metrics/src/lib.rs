#![warn(missing_docs)]

//! Measurement substrate for the GPSA evaluation harness.
//!
//! The paper's evaluation reports (a) elapsed time averaged over supersteps
//! and repeated runs (Figs. 7–10) and (b) CPU utilization of each system
//! (Fig. 11). This crate provides those instruments plus the text-table
//! renderer the figure binaries print with:
//!
//! * [`Stopwatch`] / [`SuperstepTimer`] / [`Timer`] — wall-clock timing per
//!   superstep, plus named-phase breakdowns (queue-wait vs. run-time in
//!   `gpsa-serve`),
//! * [`ProcessCpu`] / [`CpuMonitor`] — process CPU time from `/proc`,
//!   turned into a utilization fraction of the machine,
//! * [`rss_bytes`] — resident set size,
//! * [`Table`] — aligned text tables for harness output.
//!
//! The modules are public so downstream crates can name the instruments by
//! area (`gpsa_metrics::timer::Timer`, `gpsa_metrics::table::Table`); the
//! flat re-exports below are the original spellings and keep working.

pub mod cpu;
pub mod mem;
pub mod table;
pub mod timer;

pub use cpu::{CpuMonitor, CpuReport, ProcessCpu};
pub use mem::rss_bytes;
pub use table::Table;
pub use timer::{Stopwatch, SuperstepTimer, Timer};
