#![warn(missing_docs)]

//! Measurement substrate for the GPSA evaluation harness.
//!
//! The paper's evaluation reports (a) elapsed time averaged over supersteps
//! and repeated runs (Figs. 7–10) and (b) CPU utilization of each system
//! (Fig. 11). This crate provides those instruments plus the text-table
//! renderer the figure binaries print with:
//!
//! * [`Stopwatch`] / [`SuperstepTimer`] — wall-clock timing per superstep,
//! * [`ProcessCpu`] / [`CpuMonitor`] — process CPU time from `/proc`,
//!   turned into a utilization fraction of the machine,
//! * [`rss_bytes`] — resident set size,
//! * [`Table`] — aligned text tables for harness output.

mod cpu;
mod mem;
mod table;
mod timer;

pub use cpu::{CpuMonitor, CpuReport, ProcessCpu};
pub use mem::rss_bytes;
pub use table::Table;
pub use timer::{Stopwatch, SuperstepTimer};
