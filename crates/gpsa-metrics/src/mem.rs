//! Resident-set-size reading from `/proc/self/statm`.

/// Current resident set size of this process in bytes, or `None` when
/// `/proc` is unavailable.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // SAFETY: sysconf is always safe to call.
    let page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    let page = if page <= 0 { 4096 } else { page as u64 };
    Some(resident_pages * page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_and_plausible() {
        let rss = rss_bytes().expect("/proc/self/statm readable");
        assert!(rss > 1024 * 1024, "a Rust test binary uses >1MiB: {rss}");
        assert!(rss < 1 << 40, "RSS below 1TiB: {rss}");
    }

    #[test]
    fn rss_grows_with_allocation() {
        let before = rss_bytes().unwrap();
        // Touch 32 MiB so the pages become resident.
        let mut v = vec![0u8; 32 << 20];
        for i in (0..v.len()).step_by(4096) {
            v[i] = 1;
        }
        std::hint::black_box(&v);
        let after = rss_bytes().unwrap();
        assert!(
            after >= before + (16 << 20),
            "RSS should grow by most of 32MiB: before={before} after={after}"
        );
    }
}
