//! Minimal aligned text-table renderer for the figure binaries.

use std::fmt::Write as _;

/// An aligned, plain-text table. Columns are sized to their widest cell.
///
/// ```
/// use gpsa_metrics::Table;
/// let mut t = Table::new(&["system", "pagerank", "bfs"]);
/// t.row(&["GPSA", "1.23s", "0.45s"]);
/// t.row(&["X-Stream", "9.87s", "3.21s"]);
/// let s = t.render();
/// assert!(s.contains("GPSA"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Shorter rows are padded with empty cells; longer rows
    /// are truncated to the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        let mut r: Vec<String> = cells
            .iter()
            .take(self.header.len())
            .map(|s| s.as_ref().to_string())
            .collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (header, separator, rows).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // The "n" column starts at the same offset in every row.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].as_bytes()[col] as char, '2');
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('4'), "extra cell dropped");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
