//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// A restartable wall-clock stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time since start (or last restart).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Reset the start point and return the lap time.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

/// Records the wall time of each superstep of an engine run.
///
/// The paper compares "the average elapsed time of five supersteps", so the
/// primary accessors are [`SuperstepTimer::mean`] and
/// [`SuperstepTimer::mean_of_first`].
#[derive(Debug, Default, Clone)]
pub struct SuperstepTimer {
    steps: Vec<Duration>,
    current: Option<Instant>,
}

impl SuperstepTimer {
    /// New, empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the beginning of a superstep.
    pub fn begin_step(&mut self) {
        self.current = Some(Instant::now());
    }

    /// Mark the end of the current superstep.
    ///
    /// # Panics
    /// Panics if no step was begun.
    pub fn end_step(&mut self) {
        let start = self.current.take().expect("end_step without begin_step");
        self.steps.push(start.elapsed());
    }

    /// Record an externally measured superstep duration.
    pub fn record(&mut self, d: Duration) {
        self.steps.push(d);
    }

    /// Durations of all completed supersteps, in order.
    pub fn steps(&self) -> &[Duration] {
        &self.steps
    }

    /// Number of completed supersteps.
    pub fn count(&self) -> usize {
        self.steps.len()
    }

    /// Total time across all completed supersteps.
    pub fn total(&self) -> Duration {
        self.steps.iter().sum()
    }

    /// Mean superstep duration (zero if none recorded).
    pub fn mean(&self) -> Duration {
        if self.steps.is_empty() {
            return Duration::ZERO;
        }
        self.total() / self.steps.len() as u32
    }

    /// Mean over the first `n` supersteps — the paper's five-superstep
    /// methodology. Uses fewer if fewer completed.
    pub fn mean_of_first(&self, n: usize) -> Duration {
        let k = n.min(self.steps.len());
        if k == 0 {
            return Duration::ZERO;
        }
        self.steps[..k].iter().sum::<Duration>() / k as u32
    }
}

/// A named-phase timer: each [`Timer::lap`] call closes the current phase,
/// labels it, and starts the next one.
///
/// Built for per-job breakdowns in the serving layer — e.g. a job's ticket
/// carries a `Timer` started at admission; the runner calls
/// `lap("queue_wait")` when the job leaves the queue and `lap("run")` when
/// the engine returns, and the response reports both slices.
#[derive(Debug, Clone)]
pub struct Timer {
    last: Instant,
    laps: Vec<(String, Duration)>,
}

impl Timer {
    /// Start the first (unnamed, open) phase now.
    pub fn start() -> Self {
        Timer {
            last: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Close the current phase under `label` and start the next one.
    /// Returns the closed phase's duration.
    pub fn lap(&mut self, label: &str) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        self.laps.push((label.to_string(), d));
        d
    }

    /// All closed phases, in order.
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }

    /// Duration of the first closed phase labelled `label`, if any.
    pub fn get(&self, label: &str) -> Option<Duration> {
        self.laps.iter().find(|(l, _)| l == label).map(|&(_, d)| d)
    }

    /// Sum of all closed phases (excludes the still-open one).
    pub fn total(&self) -> Duration {
        self.laps.iter().map(|&(_, d)| d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(10));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(9));
        assert!(sw.elapsed() < lap);
    }

    #[test]
    fn superstep_timer_means() {
        let mut t = SuperstepTimer::new();
        assert_eq!(t.mean(), Duration::ZERO);
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(20));
        t.record(Duration::from_millis(30));
        assert_eq!(t.count(), 3);
        assert_eq!(t.total(), Duration::from_millis(60));
        assert_eq!(t.mean(), Duration::from_millis(20));
        assert_eq!(t.mean_of_first(2), Duration::from_millis(15));
        assert_eq!(t.mean_of_first(5), Duration::from_millis(20));
        assert_eq!(t.mean_of_first(0), Duration::ZERO);
    }

    #[test]
    fn begin_end_pairs() {
        let mut t = SuperstepTimer::new();
        t.begin_step();
        std::thread::sleep(Duration::from_millis(5));
        t.end_step();
        assert_eq!(t.count(), 1);
        assert!(t.steps()[0] >= Duration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "end_step without begin_step")]
    fn end_without_begin_panics() {
        let mut t = SuperstepTimer::new();
        t.end_step();
    }

    #[test]
    fn phase_timer_slices_and_labels() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(5));
        let q = t.lap("queue_wait");
        assert!(q >= Duration::from_millis(4));
        std::thread::sleep(Duration::from_millis(5));
        let r = t.lap("run");
        assert!(r >= Duration::from_millis(4));
        assert_eq!(t.laps().len(), 2);
        assert_eq!(t.get("queue_wait"), Some(q));
        assert_eq!(t.get("run"), Some(r));
        assert_eq!(t.get("absent"), None);
        assert_eq!(t.total(), q + r);
    }
}
