//! Error type for mapping operations.

use std::fmt;
use std::io;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O or syscall failure.
    Io(io::Error),
    /// A zero-length mapping was requested; `mmap(2)` rejects those.
    EmptyMapping,
    /// A typed view was requested whose element type does not evenly divide
    /// or align with the mapped region.
    BadLayout {
        /// Size of the requested element type in bytes.
        elem_size: usize,
        /// Alignment of the requested element type in bytes.
        elem_align: usize,
        /// Length of the mapped region in bytes.
        map_len: usize,
    },
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "mmap I/O error: {e}"),
            Error::EmptyMapping => write!(f, "cannot create a zero-length mapping"),
            Error::BadLayout {
                elem_size,
                elem_align,
                map_len,
            } => write!(
                f,
                "typed view mismatch: {map_len}-byte mapping cannot be viewed as \
                 elements of size {elem_size} / align {elem_align}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        match e {
            Error::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidInput, other.to_string()),
        }
    }
}
