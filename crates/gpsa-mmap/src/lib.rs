#![warn(missing_docs)]

//! Memory-mapped file I/O substrate for GPSA.
//!
//! The GPSA paper replaces the explicit buffer management of GraphChi and
//! X-Stream with plain OS memory mapping: the vertex-value file and the CSR
//! edge file are `mmap`ed and accessed directly, letting the page cache do
//! the I/O scheduling. This crate provides that substrate:
//!
//! * [`MmapMut`] / [`Mmap`] — shared, file-backed mappings built directly on
//!   `libc::mmap` (no third-party mmap crate),
//! * typed views over mappings for any [`Pod`] element type,
//! * atomic views ([`MmapMut::atomic_u32`], [`MmapMut::atomic_u64`]) used by
//!   the engine so dispatch and compute actors can share one mapping without
//!   data races,
//! * [`Advice`] — `madvise` hints (the dispatcher streams edges
//!   sequentially, the computer touches values randomly).
//!
//! # Example
//!
//! ```
//! use gpsa_mmap::{MmapMut, Advice};
//! let dir = std::env::temp_dir().join(format!("gpsa-mmap-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("values.bin");
//! let mut map = MmapMut::create(&path, 4096).unwrap();
//! map.advise(Advice::Sequential).unwrap();
//! map.as_mut_slice_of::<u32>().unwrap()[0] = 42;
//! map.flush().unwrap();
//! drop(map);
//! let map = MmapMut::open(&path).unwrap();
//! assert_eq!(map.as_slice_of::<u32>().unwrap()[0], 42);
//! ```

mod error;
mod mapping;
mod pod;

pub use error::{Error, Result};
pub use mapping::{Advice, Mmap, MmapMut};
pub use pod::Pod;
