//! File-backed shared mappings over raw `libc::mmap`.

use std::fs::{File, OpenOptions};
use std::os::unix::io::AsRawFd;
use std::path::Path;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64};

use crate::error::{Error, Result};
use crate::pod::Pod;

/// Access-pattern hints forwarded to `madvise(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Default OS read-ahead behaviour.
    Normal,
    /// The region will be scanned front to back (dispatcher edge streaming).
    Sequential,
    /// The region will be accessed at random offsets (vertex value file).
    Random,
    /// The region will be needed soon; prefault pages.
    WillNeed,
}

impl Advice {
    fn as_raw(self) -> libc::c_int {
        match self {
            Advice::Normal => libc::MADV_NORMAL,
            Advice::Sequential => libc::MADV_SEQUENTIAL,
            Advice::Random => libc::MADV_RANDOM,
            Advice::WillNeed => libc::MADV_WILLNEED,
        }
    }
}

/// A shared, writable, file-backed memory mapping.
///
/// The mapping is `MAP_SHARED`, so stores become visible to the file and to
/// any other mapping of the same file. Dropping the value unmaps the region
/// (dirty pages are still written back by the kernel; call
/// [`MmapMut::flush`] for durability at a known point).
#[derive(Debug)]
pub struct MmapMut {
    ptr: NonNull<u8>,
    len: usize,
    file: File,
}

// SAFETY: the mapping is plain memory owned by this value; the `File` is
// only used for msync/ftruncate which are thread-safe.
unsafe impl Send for MmapMut {}
unsafe impl Sync for MmapMut {}

/// A shared read-only, file-backed memory mapping.
#[derive(Debug)]
pub struct Mmap {
    ptr: NonNull<u8>,
    len: usize,
    _file: File,
}

unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

fn map_fd(file: &File, len: usize, prot: libc::c_int) -> Result<NonNull<u8>> {
    if len == 0 {
        return Err(Error::EmptyMapping);
    }
    // SAFETY: standard mmap of a file descriptor we own; failure is checked.
    let ptr = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            len,
            prot,
            libc::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == libc::MAP_FAILED {
        return Err(Error::Io(std::io::Error::last_os_error()));
    }
    Ok(NonNull::new(ptr as *mut u8).expect("mmap returned non-null on success"))
}

impl MmapMut {
    /// Create (or truncate) `path` to exactly `len` bytes and map it
    /// read-write.
    pub fn create<P: AsRef<Path>>(path: P, len: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        let ptr = map_fd(&file, len, libc::PROT_READ | libc::PROT_WRITE)?;
        Ok(MmapMut { ptr, len, file })
    }

    /// Map an existing file read-write over its full current length.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        let ptr = map_fd(&file, len, libc::PROT_READ | libc::PROT_WRITE)?;
        Ok(MmapMut { ptr, len, file })
    }

    /// Length of the mapped region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the region is empty (never true for a live mapping).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw byte view of the whole mapping.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live MAP_SHARED region we own.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable raw byte view of the whole mapping.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above; &mut self guarantees exclusivity at this layer.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    fn check_layout<T: Pod>(&self) -> Result<usize> {
        let size = std::mem::size_of::<T>();
        let align = std::mem::align_of::<T>();
        // mmap returns page-aligned addresses, so alignment can only fail
        // for exotic over-aligned types; length must divide exactly.
        if size == 0
            || !self.len.is_multiple_of(size)
            || !(self.ptr.as_ptr() as usize).is_multiple_of(align)
        {
            return Err(Error::BadLayout {
                elem_size: size,
                elem_align: align,
                map_len: self.len,
            });
        }
        Ok(self.len / size)
    }

    /// View the mapping as a slice of `T`.
    pub fn as_slice_of<T: Pod>(&self) -> Result<&[T]> {
        let n = self.check_layout::<T>()?;
        // SAFETY: layout checked; T is Pod so any bytes are valid.
        Ok(unsafe { std::slice::from_raw_parts(self.ptr.as_ptr() as *const T, n) })
    }

    /// View the mapping as a mutable slice of `T`.
    pub fn as_mut_slice_of<T: Pod>(&mut self) -> Result<&mut [T]> {
        let n = self.check_layout::<T>()?;
        // SAFETY: layout checked; &mut self gives exclusivity.
        Ok(unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr() as *mut T, n) })
    }

    /// View the mapping as a slice of `AtomicU32`.
    ///
    /// This is the engine's shared-access path: dispatch and compute actors
    /// hold the same `Arc<MmapMut>` and perform relaxed atomic loads/stores;
    /// ordering across superstep boundaries comes from the manager barrier.
    pub fn atomic_u32(&self) -> Result<&[AtomicU32]> {
        let size = std::mem::size_of::<AtomicU32>();
        if !self.len.is_multiple_of(size) || !(self.ptr.as_ptr() as usize).is_multiple_of(size) {
            return Err(Error::BadLayout {
                elem_size: size,
                elem_align: size,
                map_len: self.len,
            });
        }
        // SAFETY: AtomicU32 has the same layout as u32 and every bit pattern
        // is valid; shared mutation through &self is the whole point of the
        // atomic type.
        Ok(unsafe {
            std::slice::from_raw_parts(self.ptr.as_ptr() as *const AtomicU32, self.len / size)
        })
    }

    /// View the mapping as a slice of `AtomicU64`. See [`Self::atomic_u32`].
    pub fn atomic_u64(&self) -> Result<&[AtomicU64]> {
        let size = std::mem::size_of::<AtomicU64>();
        if !self.len.is_multiple_of(size) || !(self.ptr.as_ptr() as usize).is_multiple_of(size) {
            return Err(Error::BadLayout {
                elem_size: size,
                elem_align: size,
                map_len: self.len,
            });
        }
        // SAFETY: as atomic_u32.
        Ok(unsafe {
            std::slice::from_raw_parts(self.ptr.as_ptr() as *const AtomicU64, self.len / size)
        })
    }

    /// Synchronously write dirty pages back to the file (`msync(MS_SYNC)`).
    pub fn flush(&self) -> Result<()> {
        // SAFETY: valid region owned by self.
        let rc = unsafe { libc::msync(self.ptr.as_ptr() as *mut _, self.len, libc::MS_SYNC) };
        if rc != 0 {
            return Err(Error::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Synchronously write back only the pages covering
    /// `[offset, offset + len)` (`msync(MS_SYNC)` on the page-aligned
    /// enclosing range).
    ///
    /// This is the ordering primitive behind torn-proof commits: callers
    /// flush data pages durably *before* touching (and then flushing) a
    /// header page, so a crash between the two flushes can never persist a
    /// header that describes unwritten data. `msync` requires a
    /// page-aligned address, so the range is widened to page boundaries —
    /// the extra bytes flushed are at worst one page on each side.
    pub fn flush_range(&self, offset: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= self.len)
            .ok_or_else(|| {
                Error::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "flush_range {offset}+{len} exceeds {}-byte mapping",
                        self.len
                    ),
                ))
            })?;
        // SAFETY: sysconf is always safe to call.
        let page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
        let page = if page > 0 { page as usize } else { 4096 };
        let aligned_start = offset - (offset % page);
        let aligned_len = end - aligned_start;
        // SAFETY: the aligned range is within the region we own (start is
        // rounded down, end is unchanged and bounds-checked above).
        let rc = unsafe {
            libc::msync(
                self.ptr.as_ptr().add(aligned_start) as *mut _,
                aligned_len,
                libc::MS_SYNC,
            )
        };
        if rc != 0 {
            return Err(Error::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Hint the kernel about the upcoming access pattern.
    pub fn advise(&self, advice: Advice) -> Result<()> {
        // SAFETY: valid region owned by self.
        let rc = unsafe { libc::madvise(self.ptr.as_ptr() as *mut _, self.len, advice.as_raw()) };
        if rc != 0 {
            return Err(Error::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Hint the kernel about the access pattern of just
    /// `[offset, offset + len)` (page-aligned enclosing range), leaving
    /// the rest of the mapping under its previous advice. Sparse readers
    /// use this to mark only the window they will actually seek through
    /// as `Random` instead of demoting the whole map.
    pub fn advise_range(&self, offset: usize, len: usize, advice: Advice) -> Result<()> {
        advise_range_raw(self.ptr, self.len, offset, len, advice)
    }

    /// Best-effort transparent-hugepage hint (`MADV_HUGEPAGE`) for the
    /// whole mapping. Returns whether the kernel accepted it — see
    /// [`advise_hugepage_raw`]; a `false` is expected on kernels without
    /// file-backed THP support and callers proceed unchanged.
    pub fn advise_hugepage(&self) -> bool {
        advise_hugepage_raw(self.ptr, self.len)
    }

    /// The underlying file handle (for metadata or extra fsyncs).
    pub fn file(&self) -> &File {
        &self.file
    }
}

/// Best-effort `madvise(MADV_HUGEPAGE)` over a whole mapping. Returns
/// whether the kernel accepted the hint: transparent hugepages for
/// file-backed mappings need kernel support (`CONFIG_READ_ONLY_THP_FOR_FS`
/// or tmpfs), so `EINVAL` here is an expected outcome, not an error —
/// callers treat `false` as "ran without the optimization".
fn advise_hugepage_raw(ptr: NonNull<u8>, len: usize) -> bool {
    if len == 0 {
        return false;
    }
    // SAFETY: valid region owned by the caller's live mapping.
    unsafe { libc::madvise(ptr.as_ptr() as *mut _, len, libc::MADV_HUGEPAGE) == 0 }
}

/// `madvise` the page-aligned range enclosing `[offset, offset + len)`
/// within a mapping of `map_len` bytes starting at `ptr`.
fn advise_range_raw(
    ptr: NonNull<u8>,
    map_len: usize,
    offset: usize,
    len: usize,
    advice: Advice,
) -> Result<()> {
    if len == 0 {
        return Ok(());
    }
    let end = offset
        .checked_add(len)
        .filter(|&e| e <= map_len)
        .ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("advise_range {offset}+{len} exceeds {map_len}-byte mapping"),
            ))
        })?;
    // SAFETY: sysconf is always safe to call.
    let page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    let page = if page > 0 { page as usize } else { 4096 };
    let aligned_start = offset - (offset % page);
    let aligned_len = end - aligned_start;
    // SAFETY: the aligned range is within the region (start rounded down,
    // end bounds-checked above).
    let rc = unsafe {
        libc::madvise(
            ptr.as_ptr().add(aligned_start) as *mut _,
            aligned_len,
            advice.as_raw(),
        )
    };
    if rc != 0 {
        return Err(Error::Io(std::io::Error::last_os_error()));
    }
    Ok(())
}

impl Drop for MmapMut {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region we mapped; errors on unmap are
        // not actionable during drop.
        unsafe {
            libc::munmap(self.ptr.as_ptr() as *mut _, self.len);
        }
    }
}

impl Mmap {
    /// Map an existing file read-only over its full current length.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        let ptr = map_fd(&file, len, libc::PROT_READ)?;
        Ok(Mmap {
            ptr,
            len,
            _file: file,
        })
    }

    /// Length of the mapped region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the region is empty (never true for a live mapping).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw byte view of the whole mapping.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live mapping we own.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// View the mapping as a slice of `T`.
    pub fn as_slice_of<T: Pod>(&self) -> Result<&[T]> {
        let size = std::mem::size_of::<T>();
        let align = std::mem::align_of::<T>();
        if size == 0
            || !self.len.is_multiple_of(size)
            || !(self.ptr.as_ptr() as usize).is_multiple_of(align)
        {
            return Err(Error::BadLayout {
                elem_size: size,
                elem_align: align,
                map_len: self.len,
            });
        }
        // SAFETY: layout checked; T is Pod.
        Ok(unsafe { std::slice::from_raw_parts(self.ptr.as_ptr() as *const T, self.len / size) })
    }

    /// Hint the kernel about the upcoming access pattern.
    pub fn advise(&self, advice: Advice) -> Result<()> {
        // SAFETY: valid region owned by self.
        let rc = unsafe { libc::madvise(self.ptr.as_ptr() as *mut _, self.len, advice.as_raw()) };
        if rc != 0 {
            return Err(Error::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Hint the kernel about the access pattern of just
    /// `[offset, offset + len)` (page-aligned enclosing range), leaving
    /// the rest of the mapping under its previous advice. Sparse readers
    /// use this to mark only the window they will actually seek through
    /// as `Random` instead of demoting the whole map.
    pub fn advise_range(&self, offset: usize, len: usize, advice: Advice) -> Result<()> {
        advise_range_raw(self.ptr, self.len, offset, len, advice)
    }

    /// Best-effort transparent-hugepage hint (`MADV_HUGEPAGE`) for the
    /// whole mapping. Returns whether the kernel accepted it — see
    /// [`advise_hugepage_raw`]; a `false` is expected on kernels without
    /// file-backed THP support and callers proceed unchanged.
    pub fn advise_hugepage(&self) -> bool {
        advise_hugepage_raw(self.ptr, self.len)
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region we mapped.
        unsafe {
            libc::munmap(self.ptr.as_ptr() as *mut _, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-mmap-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_write_reopen_roundtrip() {
        let path = tmp("roundtrip.bin");
        {
            let mut m = MmapMut::create(&path, 8192).unwrap();
            let s = m.as_mut_slice_of::<u64>().unwrap();
            for (i, v) in s.iter_mut().enumerate() {
                *v = (i as u64) * 3;
            }
            m.flush().unwrap();
        }
        let m = Mmap::open(&path).unwrap();
        let s = m.as_slice_of::<u64>().unwrap();
        assert_eq!(s.len(), 1024);
        assert_eq!(s[7], 21);
        assert_eq!(s[1023], 1023 * 3);
    }

    #[test]
    fn zero_length_rejected() {
        let path = tmp("empty.bin");
        match MmapMut::create(&path, 0) {
            Err(Error::EmptyMapping) => {}
            other => panic!("expected EmptyMapping, got {other:?}"),
        }
    }

    #[test]
    fn bad_layout_rejected() {
        let path = tmp("odd.bin");
        let m = MmapMut::create(&path, 10).unwrap();
        assert!(m.as_slice_of::<u64>().is_err());
        assert!(m.as_slice_of::<u8>().is_ok());
        assert!(m.atomic_u32().is_err());
    }

    #[test]
    fn shared_visibility_between_two_maps() {
        let path = tmp("shared.bin");
        let mut a = MmapMut::create(&path, 4096).unwrap();
        let b = MmapMut::open(&path).unwrap();
        a.as_mut_slice_of::<u32>().unwrap()[17] = 0xDEAD_BEEF;
        assert_eq!(b.as_slice_of::<u32>().unwrap()[17], 0xDEAD_BEEF);
    }

    #[test]
    fn atomic_view_cross_thread() {
        let path = tmp("atomic.bin");
        let m = std::sync::Arc::new(MmapMut::create(&path, 4096).unwrap());
        let n_threads = 8;
        let incr_per_thread = 10_000;
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let a = m.atomic_u32().unwrap();
                for _ in 0..incr_per_thread {
                    a[0].fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            m.atomic_u32().unwrap()[0].load(Ordering::Relaxed),
            n_threads * incr_per_thread
        );
    }

    #[test]
    fn flush_range_persists_the_touched_pages() {
        let path = tmp("flushrange.bin");
        let mut m = MmapMut::create(&path, 16 * 4096).unwrap();
        let s = m.as_mut_slice_of::<u32>().unwrap();
        s[0] = 0xAAAA_0001;
        s[5000] = 0xBBBB_0002; // page ~4
        s[16 * 1024 - 1] = 0xCCCC_0003; // last word
        m.flush_range(0, 4096).unwrap();
        m.flush_range(5000 * 4, 4).unwrap();
        m.flush_range(16 * 4096 - 4, 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(words[0], 0xAAAA_0001);
        assert_eq!(words[5000], 0xBBBB_0002);
        assert_eq!(words[16 * 1024 - 1], 0xCCCC_0003);
    }

    #[test]
    fn flush_range_rejects_out_of_bounds() {
        let path = tmp("flushoob.bin");
        let m = MmapMut::create(&path, 4096).unwrap();
        assert!(m.flush_range(0, 4097).is_err());
        assert!(m.flush_range(4096, 1).is_err());
        assert!(m.flush_range(usize::MAX, 2).is_err());
        // Zero-length and full-range are fine.
        m.flush_range(17, 0).unwrap();
        m.flush_range(0, 4096).unwrap();
    }

    #[test]
    fn advise_all_variants_accepted() {
        let path = tmp("advise.bin");
        let m = MmapMut::create(&path, 4096).unwrap();
        for adv in [
            Advice::Normal,
            Advice::Sequential,
            Advice::Random,
            Advice::WillNeed,
        ] {
            m.advise(adv).unwrap();
        }
    }

    #[test]
    fn advise_hugepage_is_best_effort() {
        let path = tmp("hugepage.bin");
        let m = MmapMut::create(&path, 4096).unwrap();
        // Either outcome is valid — file-backed THP depends on kernel
        // config — the call just must not fault or corrupt the mapping.
        let _ = m.advise_hugepage();
        m.as_bytes();
        let r = Mmap::open(&path).unwrap();
        let _ = r.advise_hugepage();
        assert_eq!(r.len(), 4096);
    }

    #[test]
    fn open_maps_existing_contents() {
        let path = tmp("existing.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let m = MmapMut::open(&path).unwrap();
        assert_eq!(m.len(), 8);
        assert_eq!(m.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.as_slice_of::<u32>().unwrap().len(), 2);
    }

    #[test]
    fn atomic_u64_view_works() {
        let path = tmp("atomic64.bin");
        let m = MmapMut::create(&path, 64).unwrap();
        let a = m.atomic_u64().unwrap();
        a[3].store(u64::MAX - 1, Ordering::Relaxed);
        assert_eq!(a[3].load(Ordering::Relaxed), u64::MAX - 1);
        assert_eq!(m.as_slice_of::<u64>().unwrap()[3], u64::MAX - 1);
    }
}
