//! Plain-old-data marker for types that may be viewed inside a mapping.

/// Types that are safe to reinterpret from raw mapped bytes.
///
/// # Safety
///
/// Implementors must guarantee that **every** bit pattern of
/// `size_of::<Self>()` bytes is a valid value of `Self` and that `Self`
/// contains no padding, pointers, or interior mutability. All primitive
/// integer and IEEE-754 float types qualify.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_pod<T: Pod>() {}

    #[test]
    fn primitives_are_pod() {
        assert_pod::<u8>();
        assert_pod::<u32>();
        assert_pod::<u64>();
        assert_pod::<f32>();
        assert_pod::<f64>();
        assert_pod::<[u32; 2]>();
    }
}
