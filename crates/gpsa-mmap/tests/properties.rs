//! Property tests: mapped writes must roundtrip through the filesystem
//! byte-for-byte for arbitrary contents and access patterns.

use gpsa_mmap::{Mmap, MmapMut};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gpsa-mmap-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{case}.bin"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn bytes_roundtrip_through_flush_and_reopen(data in proptest::collection::vec(any::<u8>(), 1..8192)) {
        let path = tmp("bytes");
        {
            let mut m = MmapMut::create(&path, data.len()).unwrap();
            m.as_bytes_mut().copy_from_slice(&data);
            m.flush().unwrap();
        }
        let m = Mmap::open(&path).unwrap();
        prop_assert_eq!(m.as_bytes(), &data[..]);
        // And through plain fs read too.
        prop_assert_eq!(std::fs::read(&path).unwrap(), data);
    }

    #[test]
    fn sparse_u32_writes_land_at_their_offsets(
        len_words in 1usize..2048,
        writes in proptest::collection::vec((any::<prop::sample::Index>(), any::<u32>()), 0..64),
    ) {
        let path = tmp("sparse");
        let mut expect = vec![0u32; len_words];
        {
            let mut m = MmapMut::create(&path, len_words * 4).unwrap();
            let s = m.as_mut_slice_of::<u32>().unwrap();
            for (idx, val) in &writes {
                let i = idx.index(len_words);
                s[i] = *val;
                expect[i] = *val;
            }
            m.flush().unwrap();
        }
        let m = Mmap::open(&path).unwrap();
        prop_assert_eq!(m.as_slice_of::<u32>().unwrap(), &expect[..]);
    }

    #[test]
    fn atomic_and_plain_views_agree(words in proptest::collection::vec(any::<u32>(), 1..512)) {
        let path = tmp("views");
        let mut m = MmapMut::create(&path, words.len() * 4).unwrap();
        m.as_mut_slice_of::<u32>().unwrap().copy_from_slice(&words);
        let atomics = m.atomic_u32().unwrap();
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(atomics[i].load(Ordering::Relaxed), *w);
        }
        // Store through the atomic view, read through the plain view.
        for a in atomics {
            a.store(a.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
        }
        let plain = m.as_slice_of::<u32>().unwrap();
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(plain[i], w.wrapping_add(1));
        }
    }
}
