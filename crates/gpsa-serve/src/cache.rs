//! The result cache: identical queries against an unchanged graph are
//! answered without running a single superstep.
//!
//! Keys are `(graph_id, algorithm, canonical params, graph_epoch)`. The
//! epoch component makes invalidation structural: re-registering a graph
//! bumps its epoch, so every old entry simply stops matching (and
//! [`ResultCache::purge_graph`] reclaims the memory eagerly). Eviction is
//! least-recently-used over a fixed entry capacity.

use std::collections::HashMap;
use std::sync::Arc;

use crate::job::JobOutcome;

/// Cache key. `params` must be the canonical rendering produced by
/// [`crate::job::AlgorithmSpec::canonical_params`] so that semantically
/// identical submissions hash identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered graph id.
    pub graph_id: String,
    /// Algorithm name (`"pagerank"`, `"bfs"`, ...).
    pub algorithm: String,
    /// Canonical parameter string.
    pub params: String,
    /// Registry epoch of the graph at submit time.
    pub epoch: u64,
}

struct Slot {
    outcome: Arc<JobOutcome>,
    /// Logical access clock value at last touch; smallest = coldest.
    last_used: u64,
}

/// LRU cache of completed job outcomes.
pub struct ResultCache {
    slots: HashMap<CacheKey, Slot>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            slots: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a result, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<JobOutcome>> {
        self.clock += 1;
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(slot.outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a completed outcome, evicting the least-recently-used entry
    /// if the cache is full. A no-op when capacity is 0.
    pub fn put(&mut self, key: CacheKey, outcome: Arc<JobOutcome>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.slots.len() >= self.capacity && !self.slots.contains_key(&key) {
            if let Some(coldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                self.slots.remove(&coldest);
            }
        }
        self.slots.insert(
            key,
            Slot {
                outcome,
                last_used: self.clock,
            },
        );
    }

    /// Drop every entry for `graph_id`, whatever its epoch. Called on
    /// re-register; correctness does not depend on it (the epoch in the
    /// key already prevents stale hits) but it frees the value arrays.
    pub fn purge_graph(&mut self, graph_id: &str) -> usize {
        let before = self.slots.len();
        self.slots.retain(|k, _| k.graph_id != graph_id);
        before - self.slots.len()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lifetime (hits, misses).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ValueType;

    fn key(graph: &str, params: &str, epoch: u64) -> CacheKey {
        CacheKey {
            graph_id: graph.to_string(),
            algorithm: "bfs".to_string(),
            params: params.to_string(),
            epoch,
        }
    }

    fn outcome(tag: u32) -> Arc<JobOutcome> {
        Arc::new(JobOutcome {
            value_type: ValueType::U32,
            values_u32: Arc::new(vec![tag]),
            supersteps: 1,
            messages: 1,
            retry_attempts: 0,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key("g", "root=0", 1)).is_none());
        c.put(key("g", "root=0", 1), outcome(7));
        let got = c.get(&key("g", "root=0", 1)).unwrap();
        assert_eq!(*got.values_u32, vec![7]);
        // Different epoch: structurally a different key.
        assert!(c.get(&key("g", "root=0", 2)).is_none());
        assert_eq!(c.counters(), (1, 2));
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut c = ResultCache::new(2);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "b", 1), outcome(2));
        // Touch "a" so "b" is the coldest.
        assert!(c.get(&key("g", "a", 1)).is_some());
        c.put(key("g", "c", 1), outcome(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("g", "a", 1)).is_some());
        assert!(c.get(&key("g", "b", 1)).is_none());
        assert!(c.get(&key("g", "c", 1)).is_some());
    }

    #[test]
    fn purge_drops_all_epochs_of_one_graph() {
        let mut c = ResultCache::new(8);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "a", 2), outcome(2));
        c.put(key("h", "a", 1), outcome(3));
        assert_eq!(c.purge_graph("g"), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("h", "a", 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.put(key("g", "a", 1), outcome(1));
        assert!(c.get(&key("g", "a", 1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = ResultCache::new(1);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "a", 1), outcome(9));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&key("g", "a", 1)).unwrap().values_u32, vec![9]);
    }
}
