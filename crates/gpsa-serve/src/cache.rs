//! The result cache: identical queries against an unchanged graph are
//! answered without running a single superstep.
//!
//! Keys are `(graph_id, algorithm, canonical params, graph_epoch,
//! delta_seq)`. The version components make invalidation structural:
//! re-registering a graph with changed bytes (or compacting it) bumps its
//! epoch, and every live mutation advances its delta seq — so every old
//! entry simply stops matching (and [`ResultCache::purge_graph`] reclaims
//! the memory eagerly). Eviction is least-recently-used over a fixed
//! entry capacity.
//!
//! With a spill directory attached, the cache also survives restarts:
//! every insert writes the entry to one JSON file (tmp + rename, named by
//! an FNV-1a hash of the key), eviction and purging delete the file, and
//! [`ResultCache::open`] loads whatever the directory holds. The spill is
//! strictly best-effort — a lost or corrupt entry file is a cache miss,
//! never an error — and [`ResultCache::retain_valid`] drops restored
//! entries whose graph epoch no longer matches the restored registry.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use crate::job::{JobOutcome, ValueType};
use crate::json::Json;

/// Cache key. `params` must be the canonical rendering produced by
/// [`crate::job::AlgorithmSpec::canonical_params`] so that semantically
/// identical submissions hash identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered graph id.
    pub graph_id: String,
    /// Algorithm name (`"pagerank"`, `"bfs"`, ...).
    pub algorithm: String,
    /// Canonical parameter string.
    pub params: String,
    /// Registry epoch of the graph at submit time.
    pub epoch: u64,
    /// Delta batches folded into the graph's overlay at submit time —
    /// the within-epoch mutation counter.
    pub delta_seq: u64,
}

impl CacheKey {
    /// Stable spill filename for this key: FNV-1a over the fields with a
    /// separator no field can contain.
    fn file_name(&self) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0x1f; // field separator
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(self.graph_id.as_bytes());
        eat(self.algorithm.as_bytes());
        eat(self.params.as_bytes());
        eat(&self.epoch.to_le_bytes());
        eat(&self.delta_seq.to_le_bytes());
        format!("e{h:016x}.json")
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .set("graph_id", Json::str(&self.graph_id))
            .set("algorithm", Json::str(&self.algorithm))
            .set("params", Json::str(&self.params))
            .set("epoch", Json::num(self.epoch))
            .set("delta_seq", Json::num(self.delta_seq))
    }

    fn from_json(j: &Json) -> Option<CacheKey> {
        Some(CacheKey {
            graph_id: j.get("graph_id")?.as_str()?.to_string(),
            algorithm: j.get("algorithm")?.as_str()?.to_string(),
            params: j.get("params")?.as_str()?.to_string(),
            epoch: j.get("epoch")?.as_u64()?,
            // Spills from before live graphs carry no seq: read as 0,
            // the only seq that existed then.
            delta_seq: j.get("delta_seq").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

fn outcome_to_json(o: &JobOutcome) -> Json {
    Json::obj()
        .set("value_type", Json::str(o.value_type.as_str()))
        .set(
            "values_u32",
            Json::Arr(o.values_u32.iter().map(|b| Json::num(*b as u64)).collect()),
        )
        .set("supersteps", Json::num(o.supersteps))
        .set("messages", Json::num(o.messages))
        .set("edges_streamed", Json::num(o.edges_streamed))
        .set("edges_skipped", Json::num(o.edges_skipped))
        .set(
            "mean_frontier_density",
            Json::float(o.mean_frontier_density),
        )
        .set("retry_attempts", Json::num(o.retry_attempts as u64))
}

fn outcome_from_json(j: &Json) -> Option<JobOutcome> {
    let values = j
        .get("values_u32")?
        .as_arr()?
        .iter()
        .map(Json::as_u32)
        .collect::<Option<Vec<u32>>>()?;
    Some(JobOutcome {
        value_type: ValueType::parse(j.get("value_type")?.as_str()?)?,
        values_u32: Arc::new(values),
        supersteps: j.get("supersteps")?.as_u64()?,
        messages: j.get("messages")?.as_u64()?,
        // Dispatch-I/O counters arrived after the spill format shipped;
        // entries journaled by older servers simply read back as 0.
        edges_streamed: j.get("edges_streamed").and_then(Json::as_u64).unwrap_or(0),
        edges_skipped: j.get("edges_skipped").and_then(Json::as_u64).unwrap_or(0),
        mean_frontier_density: j
            .get("mean_frontier_density")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        retry_attempts: j.get("retry_attempts")?.as_u64()? as u32,
        // Phase timings describe one run, not the cached value set.
        phases: Vec::new(),
    })
}

struct Slot {
    outcome: Arc<JobOutcome>,
    /// Logical access clock value at last touch; smallest = coldest.
    last_used: u64,
}

/// LRU cache of completed job outcomes.
pub struct ResultCache {
    slots: HashMap<CacheKey, Slot>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    spill_dir: Option<PathBuf>,
}

impl ResultCache {
    /// An empty, memory-only cache holding at most `capacity` entries
    /// (0 disables caching entirely: every lookup misses, every insert is
    /// dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            slots: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            spill_dir: None,
        }
    }

    /// A durable cache spilling to `spill_dir`, reloaded with whatever a
    /// previous server left there (at most `capacity` entries; surplus
    /// and unreadable files are deleted). Restored entries start cold —
    /// recency does not survive a restart, which only costs eviction
    /// ordering, never correctness.
    pub fn open(capacity: usize, spill_dir: PathBuf) -> Self {
        let mut cache = ResultCache::new(capacity);
        let _ = std::fs::create_dir_all(&spill_dir);
        if let Ok(entries) = std::fs::read_dir(&spill_dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let loaded = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| Json::parse(&text).ok())
                    .and_then(|j| {
                        let key = CacheKey::from_json(j.get("key")?)?;
                        let outcome = outcome_from_json(j.get("outcome")?)?;
                        Some((key, outcome))
                    });
                match loaded {
                    Some((key, outcome)) if cache.slots.len() < capacity => {
                        cache.clock += 1;
                        cache.slots.insert(
                            key,
                            Slot {
                                outcome: Arc::new(outcome),
                                last_used: cache.clock,
                            },
                        );
                    }
                    _ => {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        cache.spill_dir = Some(spill_dir);
        cache
    }

    fn spill_write(&self, key: &CacheKey, outcome: &JobOutcome) {
        let Some(dir) = &self.spill_dir else { return };
        let body = Json::obj()
            .set("key", key.to_json())
            .set("outcome", outcome_to_json(outcome))
            .encode();
        let path = dir.join(key.file_name());
        let tmp = path.with_extension("json.tmp");
        let ok = std::fs::write(&tmp, body.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        if !ok {
            eprintln!("gpsa-serve: cannot spill cache entry {}", path.display());
        }
    }

    fn spill_remove(&self, key: &CacheKey) {
        if let Some(dir) = &self.spill_dir {
            let _ = std::fs::remove_file(dir.join(key.file_name()));
        }
    }

    /// Look up a result, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<JobOutcome>> {
        self.clock += 1;
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(slot.outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a completed outcome, evicting the least-recently-used entry
    /// if the cache is full. A no-op when capacity is 0.
    pub fn put(&mut self, key: CacheKey, outcome: Arc<JobOutcome>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.slots.len() >= self.capacity && !self.slots.contains_key(&key) {
            if let Some(coldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                self.slots.remove(&coldest);
                self.spill_remove(&coldest);
            }
        }
        self.spill_write(&key, &outcome);
        self.slots.insert(
            key,
            Slot {
                outcome,
                last_used: self.clock,
            },
        );
    }

    /// Drop every entry for `graph_id`, whatever its epoch. Called on
    /// re-register; correctness does not depend on it (the epoch in the
    /// key already prevents stale hits) but it frees the value arrays.
    pub fn purge_graph(&mut self, graph_id: &str) -> usize {
        let doomed: Vec<CacheKey> = self
            .slots
            .keys()
            .filter(|k| k.graph_id == graph_id)
            .cloned()
            .collect();
        for key in &doomed {
            self.slots.remove(key);
            self.spill_remove(key);
        }
        doomed.len()
    }

    /// Drop every entry whose `(graph_id, epoch, delta_seq)` is not
    /// current in `versions` (the restored registry's
    /// [`crate::GraphRegistry::versions`]). Run once after a restart: a
    /// graph that vanished, changed on disk, or lost a torn mutation
    /// batch invalidates its restored results here. Returns how many
    /// were dropped.
    pub fn retain_valid(&mut self, versions: &HashMap<String, (u64, u64)>) -> usize {
        let doomed: Vec<CacheKey> = self
            .slots
            .keys()
            .filter(|k| versions.get(&k.graph_id) != Some(&(k.epoch, k.delta_seq)))
            .cloned()
            .collect();
        for key in &doomed {
            self.slots.remove(key);
            self.spill_remove(key);
        }
        doomed.len()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lifetime (hits, misses).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ValueType;

    fn key(graph: &str, params: &str, epoch: u64) -> CacheKey {
        key_seq(graph, params, epoch, 0)
    }

    fn key_seq(graph: &str, params: &str, epoch: u64, delta_seq: u64) -> CacheKey {
        CacheKey {
            graph_id: graph.to_string(),
            algorithm: "bfs".to_string(),
            params: params.to_string(),
            epoch,
            delta_seq,
        }
    }

    fn outcome(tag: u32) -> Arc<JobOutcome> {
        Arc::new(JobOutcome {
            value_type: ValueType::U32,
            values_u32: Arc::new(vec![tag]),
            supersteps: 1,
            messages: 1,
            edges_streamed: 0,
            edges_skipped: 0,
            mean_frontier_density: 0.0,
            retry_attempts: 0,
            phases: Vec::new(),
        })
    }

    fn spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key("g", "root=0", 1)).is_none());
        c.put(key("g", "root=0", 1), outcome(7));
        let got = c.get(&key("g", "root=0", 1)).unwrap();
        assert_eq!(*got.values_u32, vec![7]);
        // Different epoch: structurally a different key.
        assert!(c.get(&key("g", "root=0", 2)).is_none());
        // Different delta seq (a mutation happened): also a miss.
        assert!(c.get(&key_seq("g", "root=0", 1, 1)).is_none());
        assert_eq!(c.counters(), (1, 3));
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut c = ResultCache::new(2);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "b", 1), outcome(2));
        // Touch "a" so "b" is the coldest.
        assert!(c.get(&key("g", "a", 1)).is_some());
        c.put(key("g", "c", 1), outcome(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("g", "a", 1)).is_some());
        assert!(c.get(&key("g", "b", 1)).is_none());
        assert!(c.get(&key("g", "c", 1)).is_some());
    }

    #[test]
    fn purge_drops_all_epochs_of_one_graph() {
        let mut c = ResultCache::new(8);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "a", 2), outcome(2));
        c.put(key("h", "a", 1), outcome(3));
        assert_eq!(c.purge_graph("g"), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("h", "a", 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.put(key("g", "a", 1), outcome(1));
        assert!(c.get(&key("g", "a", 1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = ResultCache::new(1);
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "a", 1), outcome(9));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&key("g", "a", 1)).unwrap().values_u32, vec![9]);
    }

    #[test]
    fn spilled_entries_reload_bit_exact() {
        let dir = spill_dir("reload");
        {
            let mut c = ResultCache::open(8, dir.clone());
            c.put(
                key("g", "damping_bits=1062836634,supersteps=5", 2),
                Arc::new(JobOutcome {
                    value_type: ValueType::F32,
                    values_u32: Arc::new(vec![0.17f32.to_bits(), f32::NAN.to_bits(), u32::MAX]),
                    supersteps: 5,
                    messages: 42,
                    edges_streamed: 640,
                    edges_skipped: 128,
                    mean_frontier_density: 0.5,
                    retry_attempts: 1,
                    phases: Vec::new(),
                }),
            );
            c.put(key("h", "root=3", 1), outcome(9));
        }
        let mut c = ResultCache::open(8, dir);
        assert_eq!(c.len(), 2);
        let got = c
            .get(&key("g", "damping_bits=1062836634,supersteps=5", 2))
            .unwrap();
        assert_eq!(
            *got.values_u32,
            vec![0.17f32.to_bits(), f32::NAN.to_bits(), u32::MAX],
            "restored values must be bit-identical"
        );
        assert_eq!(got.value_type, ValueType::F32);
        assert_eq!(got.supersteps, 5);
        assert_eq!(got.edges_streamed, 640);
        assert_eq!(got.edges_skipped, 128);
        assert!((got.mean_frontier_density - 0.5).abs() < 1e-9);
        assert_eq!(got.retry_attempts, 1);
        assert_eq!(*c.get(&key("h", "root=3", 1)).unwrap().values_u32, vec![9]);
    }

    #[test]
    fn eviction_and_purge_delete_spill_files() {
        let dir = spill_dir("evict");
        let mut c = ResultCache::open(2, dir.clone());
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "b", 1), outcome(2));
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        c.get(&key("g", "a", 1));
        c.put(key("g", "c", 1), outcome(3)); // evicts "b"
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        c.purge_graph("g");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        // A fresh open of the emptied dir restores nothing.
        drop(c);
        let c = ResultCache::open(2, dir);
        assert!(c.is_empty());
    }

    #[test]
    fn corrupt_spill_files_are_deleted_not_fatal() {
        let dir = spill_dir("corrupt");
        {
            let mut c = ResultCache::open(4, dir.clone());
            c.put(key("g", "a", 1), outcome(5));
        }
        std::fs::write(dir.join("e0000000000000000.json"), b"{not json").unwrap();
        let mut c = ResultCache::open(4, dir.clone());
        assert_eq!(c.len(), 1, "the intact entry survives");
        assert!(c.get(&key("g", "a", 1)).is_some());
        assert!(
            !dir.join("e0000000000000000.json").exists(),
            "garbage is swept"
        );
    }

    #[test]
    fn retain_valid_drops_stale_versions() {
        let dir = spill_dir("retain");
        let mut c = ResultCache::open(8, dir.clone());
        c.put(key("g", "a", 1), outcome(1));
        c.put(key("g", "a", 2), outcome(2));
        c.put(key_seq("g", "a", 2, 3), outcome(4));
        c.put(key("dead", "a", 1), outcome(3));
        let versions = HashMap::from([("g".to_string(), (2u64, 3u64))]);
        assert_eq!(c.retain_valid(&versions), 3);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key_seq("g", "a", 2, 3)).is_some());
        // Deletions reached the spill files too.
        drop(c);
        let c = ResultCache::open(8, dir);
        assert_eq!(c.len(), 1);
    }
}
