//! A blocking wire-protocol client.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response per connection). For
//! concurrent load, open one client per thread — the replay driver and
//! the integration tests do exactly that.
//!
//! ## Retries
//!
//! A [`RetryPolicy`] makes the client survive transient trouble: a
//! `server_busy` admission rejection, a `slow_client` shed, a refused or
//! reset connection, a server that died mid-response. Eligible failures
//! (see [`ClientError::retriable`]) are retried with bounded exponential
//! backoff plus jitter, reconnecting first when the transport broke.
//! Retries are **off by default** on [`Client::connect`] — admission
//! control is a feature, and callers probing it (or tests asserting on
//! `server_busy`) must see the first answer — and opt in via
//! [`Client::with_retry_policy`] or [`Client::connect_with`].
//!
//! Retrying a submit is safe even when the failure struck *after* the
//! server started the job: pass an idempotency key
//! ([`SubmitRequest::with_idempotency_key`]) and the resubmission either
//! attaches to the still-running job or is answered from its committed
//! result — never a duplicate run.
//!
//! When the server sheds a request it may attach a `retry_after_ms`
//! hint sized to its current queue depth; the retry loop honors it,
//! preferring the hint (jittered, capped at `max_delay`) over the
//! exponential curve for that attempt.
//!
//! ## Streaming
//!
//! [`SubmitRequest::with_stream`] asks the server to deliver the result
//! as chunked frames (start / chunk... / end) instead of one monolithic
//! reply. The client reads each chunk under a frame cap sized to the
//! negotiated chunk length, verifies its offset and CRC, and reassembles
//! the value array — so neither side ever buffers the whole result as
//! JSON text at once.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::error::ServeError;
use crate::job::{AlgorithmSpec, JobOutcome, JobResponse, Priority, ValueType};
use crate::json::Json;
use crate::registry::GraphInfo;
use crate::stats::ServerStats;
use crate::wire::{chunk_crc, read_frame, read_frame_with_cap, write_frame};

/// How a client retries transient failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt, no retries).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, capped at
    /// `max_delay`.
    pub base_delay: Duration,
    /// Ceiling for the exponential backoff.
    pub max_delay: Duration,
    /// Scale each backoff by a random factor in `[0.5, 1.5)` so a burst
    /// of rejected clients doesn't re-arrive in lockstep.
    pub jitter: bool,
}

impl RetryPolicy {
    /// Four retries, 25 ms base, 2 s cap, jitter on: rides out an
    /// admission-control burst or a server restart measured in seconds.
    pub fn default_enabled() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            jitter: true,
        }
    }

    /// No retries at all: every failure surfaces immediately.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        }
    }

    /// The backoff before retry `attempt` (0-based), jittered by `rng`.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        if !self.jitter {
            return exp;
        }
        // Factor in [0.5, 1.5): full-jitter style, centered on the curve.
        let factor = 0.5 + (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(factor)
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    /// Resolved address, kept for reconnects.
    addr: SocketAddr,
    policy: RetryPolicy,
    /// splitmix64 state for backoff jitter.
    rng: u64,
    /// `retry_after_ms` hint from the most recent error frame, consumed
    /// by the next backoff decision.
    retry_after: Option<Duration>,
}

/// A submission, client-side.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Which resident graph to run against.
    pub graph_id: String,
    /// What to run.
    pub algorithm: AlgorithmSpec,
    /// Queue class.
    pub priority: Priority,
    /// Wall-clock budget, if any.
    pub deadline: Option<Duration>,
    /// Idempotency key: resubmitting the same key never runs the job
    /// twice, even across a server crash and restart.
    pub idempotency_key: Option<String>,
    /// Tenant to bill this job to; `None` lets the server assign its
    /// per-connection default.
    pub tenant: Option<String>,
    /// Ask for the result as chunked stream frames instead of one
    /// monolithic reply.
    pub stream: bool,
}

impl SubmitRequest {
    /// A normal-priority, no-deadline submission.
    pub fn new(graph_id: impl Into<String>, algorithm: AlgorithmSpec) -> Self {
        SubmitRequest {
            graph_id: graph_id.into(),
            algorithm,
            priority: Priority::Normal,
            deadline: None,
            idempotency_key: None,
            tenant: None,
            stream: false,
        }
    }

    /// Builder-style: set the queue class.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Builder-style: set the deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Builder-style: set the idempotency key.
    pub fn with_idempotency_key(mut self, key: impl Into<String>) -> Self {
        self.idempotency_key = Some(key.into());
        self
    }

    /// Builder-style: bill the job to a named tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Builder-style: request chunked streaming delivery of the result.
    pub fn with_stream(mut self) -> Self {
        self.stream = true;
        self
    }
}

/// Client-side failure: transport errors and server-reported errors are
/// distinct — a `server_busy` rejection is not a broken connection.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (refused, reset, bad frame...).
    Io(io::Error),
    /// The server answered with a typed error.
    Server(ServeError),
}

impl ClientError {
    /// Whether a retry may succeed: transient server errors
    /// ([`ServeError::retriable`]) and connection-level transport
    /// failures (refused / reset / timed out / server died mid-response)
    /// qualify; malformed frames and permanent server errors do not.
    pub fn retriable(&self) -> bool {
        match self {
            ClientError::Server(e) => e.retriable(),
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::UnexpectedEof
            ),
        }
    }

    /// Whether the connection itself is unusable (vs a clean error frame
    /// over a healthy connection).
    fn is_transport(&self) -> bool {
        matches!(self, ClientError::Io(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn resolve<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))
}

fn open_stream(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

impl Client {
    /// Connect to a server, with retries **disabled** (see the module
    /// docs for why that is the default).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, RetryPolicy::disabled())
    }

    /// Connect with a retry policy; the initial connection itself is
    /// retried under the same policy (a restarting server refuses
    /// connections for a moment).
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<Client> {
        let addr = resolve(addr)?;
        let mut rng = jitter_seed(addr);
        let mut attempt = 0;
        let stream = loop {
            match open_stream(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if attempt >= policy.max_retries
                        || !ClientError::Io(io::Error::new(e.kind(), "")).retriable()
                    {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt, &mut rng));
                    attempt += 1;
                }
            }
        };
        Ok(Client {
            stream,
            addr,
            policy,
            rng,
            retry_after: None,
        })
    }

    /// Builder-style: replace the retry policy on an existing client.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Turn an error frame into a typed [`ClientError`], capturing any
    /// `retry_after_ms` shed hint for the next backoff decision.
    fn server_error(&mut self, resp: &Json) -> ClientError {
        self.retry_after = resp
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        let code = resp
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("engine_error");
        let message = resp
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("no message")
            .to_string();
        ClientError::Server(ServeError::from_code(code, message))
    }

    /// One raw request/response round trip on the current stream.
    fn call_once(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.retry_after = None;
        write_frame(&mut self.stream, req)?;
        let resp = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ))
        })?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(resp)
        } else {
            Err(self.server_error(&resp))
        }
    }

    /// Decide whether to retry after `err` on 0-based `attempt`: give up
    /// past the budget or on permanent errors, otherwise sleep out the
    /// backoff — the server's `retry_after_ms` hint when one arrived
    /// (jittered, capped at `max_delay`), else the exponential curve —
    /// and reconnect if the transport broke.
    fn prepare_retry(&mut self, attempt: u32, err: ClientError) -> Result<(), ClientError> {
        if attempt >= self.policy.max_retries || !err.retriable() {
            return Err(err);
        }
        let delay = match self.retry_after.take() {
            Some(hint) => {
                let hint = hint.min(self.policy.max_delay);
                if self.policy.jitter {
                    let factor =
                        0.5 + (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
                    hint.mul_f64(factor)
                } else {
                    hint
                }
            }
            None => self.policy.backoff(attempt, &mut self.rng),
        };
        std::thread::sleep(delay);
        if err.is_transport() {
            // The old stream is poisoned (mid-frame state unknown);
            // a fresh connection is the only way to resynchronize.
            match open_stream(self.addr) {
                Ok(s) => self.stream = s,
                Err(e) => {
                    if attempt + 1 >= self.policy.max_retries {
                        return Err(e.into());
                    }
                }
            }
        }
        Ok(())
    }

    /// A round trip under the retry policy: retriable failures back off
    /// (server hint or exponential + jitter), reconnect if the transport
    /// broke, and try again up to `max_retries` times.
    fn call(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut attempt = 0;
        loop {
            let err = match self.call_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            self.prepare_retry(attempt, err)?;
            attempt += 1;
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Json::obj().set("op", Json::str("ping")))
            .map(|_| ())
    }

    /// Open the CSR at `path` (a path on the **server's** filesystem) and
    /// make it resident as `graph_id`. Returns the graph's registry row,
    /// including the epoch this registration produced.
    pub fn register_graph(&mut self, graph_id: &str, path: &str) -> Result<GraphInfo, ClientError> {
        let req = Json::obj()
            .set("op", Json::str("register_graph"))
            .set("graph_id", Json::str(graph_id))
            .set("path", Json::str(path));
        let resp = self.call(&req)?;
        Ok(graph_info_from(&resp, graph_id))
    }

    /// Append edges to a resident graph's delta overlay. Durable before
    /// the reply: the batch is fsync'd to the graph's delta log server
    /// side. Returns the new registry row (same epoch, `delta_seq + 1`).
    pub fn add_edges(
        &mut self,
        graph_id: &str,
        edges: &[(u32, u32)],
    ) -> Result<GraphInfo, ClientError> {
        self.mutate(graph_id, edges, "add_edges")
    }

    /// Remove edges from a resident graph (tombstones in the overlay;
    /// removing an absent edge is a no-op). Same durability contract as
    /// [`Client::add_edges`].
    pub fn remove_edges(
        &mut self,
        graph_id: &str,
        edges: &[(u32, u32)],
    ) -> Result<GraphInfo, ClientError> {
        self.mutate(graph_id, edges, "remove_edges")
    }

    fn mutate(
        &mut self,
        graph_id: &str,
        edges: &[(u32, u32)],
        op: &str,
    ) -> Result<GraphInfo, ClientError> {
        let req = Json::obj()
            .set("op", Json::str(op))
            .set("graph_id", Json::str(graph_id))
            .set(
                "edges",
                Json::Arr(
                    edges
                        .iter()
                        .map(|(u, v)| Json::str(format!("{u}:{v}")))
                        .collect(),
                ),
            );
        let resp = self.call(&req)?;
        Ok(graph_info_from(&resp, graph_id))
    }

    /// Fold the graph's delta overlay into a fresh CSR. Blocks until the
    /// new epoch commits; the reply row has the bumped epoch and
    /// `delta_seq` 0.
    pub fn compact(&mut self, graph_id: &str) -> Result<GraphInfo, ClientError> {
        let req = Json::obj()
            .set("op", Json::str("compact"))
            .set("graph_id", Json::str(graph_id));
        let resp = self.call(&req)?;
        Ok(graph_info_from(&resp, graph_id))
    }

    /// Submit a job and block until the server answers (completion,
    /// cache hit, or typed rejection). With a retry policy, transient
    /// failures are retried — pair with an idempotency key if the job
    /// must not run twice.
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<JobResponse, ClientError> {
        let mut j = Json::obj()
            .set("op", Json::str("submit"))
            .set("graph_id", Json::str(&req.graph_id))
            .set("algorithm", Json::str(req.algorithm.name()))
            .set("params", req.algorithm.params_json())
            .set("priority", Json::str(req.priority.as_str()));
        if let Some(d) = req.deadline {
            j = j.set("deadline_ms", Json::num(d.as_millis() as u64));
        }
        if let Some(k) = &req.idempotency_key {
            j = j.set("idempotency_key", Json::str(k));
        }
        if let Some(t) = &req.tenant {
            j = j.set("tenant_id", Json::str(t));
        }
        if req.stream {
            j = j.set("stream", Json::Bool(true));
            return self.call_streaming(&j);
        }
        let resp = self.call(&j)?;
        JobResponse::from_json(&resp).map_err(ClientError::Server)
    }

    /// One streamed submit on the current stream: head frame, then chunk
    /// frames verified (offset + CRC) and reassembled, then the end
    /// summary. Each frame is read under a cap sized to the negotiated
    /// chunk length, so a result larger than memory never materializes
    /// as one JSON body.
    fn stream_once(&mut self, req: &Json) -> Result<JobResponse, ClientError> {
        self.retry_after = None;
        write_frame(&mut self.stream, req)?;
        let head = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ))
        })?;
        if head.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(self.server_error(&head));
        }
        if head.get("stream").and_then(Json::as_str) != Some("start") {
            // A server that doesn't stream (or answered from a path that
            // never streams) replies with the monolithic frame; accept it.
            return JobResponse::from_json(&head).map_err(ClientError::Server);
        }
        let bad = |msg: String| ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, msg));
        let job_id = head.get("job_id").and_then(Json::as_u64).unwrap_or(0);
        let cache_hit = head
            .get("cache_hit")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let value_type = head
            .get("value_type")
            .and_then(Json::as_str)
            .and_then(ValueType::parse)
            .ok_or_else(|| bad("stream start frame lacks a value_type".into()))?;
        let n_values = head.get("n_values").and_then(Json::as_u64).unwrap_or(0) as usize;
        let chunk_values = head
            .get("chunk_values")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            .max(1) as usize;
        // A chunk frame is at most chunk_values numbers of <= 10 digits
        // plus commas and envelope; this cap bounds client memory per
        // frame regardless of n_values.
        let frame_cap = chunk_values * 12 + (64 << 10);
        let mut values: Vec<u32> = Vec::with_capacity(n_values.min(1 << 24));
        let mut chunks_seen = 0u64;
        loop {
            let frame = read_frame_with_cap(&mut self.stream, frame_cap)?.ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-stream",
                ))
            })?;
            if frame.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(self.server_error(&frame));
            }
            match frame.get("stream").and_then(Json::as_str) {
                Some("chunk") => {
                    let offset = frame.get("offset").and_then(Json::as_u64).unwrap_or(0) as usize;
                    if offset != values.len() {
                        return Err(bad(format!(
                            "stream chunk at offset {offset}, expected {}",
                            values.len()
                        )));
                    }
                    let chunk: Vec<u32> = frame
                        .get("values_u32")
                        .and_then(Json::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(Json::as_u32)
                        .collect();
                    let crc = frame.get("crc").and_then(Json::as_u64).unwrap_or(0) as u32;
                    if chunk_crc(&chunk) != crc {
                        return Err(bad(format!("stream chunk {chunks_seen} failed its CRC")));
                    }
                    values.extend_from_slice(&chunk);
                    chunks_seen += 1;
                }
                Some("end") => {
                    let n_chunks = frame.get("n_chunks").and_then(Json::as_u64).unwrap_or(0);
                    if n_chunks != chunks_seen || values.len() != n_values {
                        return Err(bad(format!(
                            "stream ended after {chunks_seen} chunks / {} values, \
                             announced {n_chunks} / {n_values}",
                            values.len()
                        )));
                    }
                    let u = |k: &str| frame.get(k).and_then(Json::as_u64).unwrap_or(0);
                    return Ok(JobResponse {
                        job_id,
                        cache_hit,
                        outcome: Arc::new(JobOutcome {
                            value_type,
                            values_u32: Arc::new(values),
                            supersteps: u("supersteps"),
                            messages: u("messages"),
                            edges_streamed: u("edges_streamed"),
                            edges_skipped: u("edges_skipped"),
                            mean_frontier_density: frame
                                .get("mean_frontier_density")
                                .and_then(Json::as_f64)
                                .unwrap_or(0.0),
                            retry_attempts: u("retry_attempts") as u32,
                            // Streamed replies trade timing detail for
                            // bounded memory; the final frame carries
                            // counters only.
                            phases: Vec::new(),
                        }),
                        queue_wait: Duration::from_micros(u("queue_wait_us")),
                        run_time: Duration::from_micros(u("run_us")),
                        stats: frame
                            .get("stats")
                            .map(ServerStats::from_json)
                            .unwrap_or_default(),
                    });
                }
                other => {
                    return Err(bad(format!(
                        "unexpected stream frame kind {other:?} after {chunks_seen} chunks"
                    )));
                }
            }
        }
    }

    /// A streamed submit under the retry policy — the same loop as
    /// [`Client::call`], around [`Client::stream_once`]. A stream that
    /// dies mid-way is a transport error, so the retry reconnects and
    /// resubmits from scratch (idempotency keys make that safe).
    fn call_streaming(&mut self, req: &Json) -> Result<JobResponse, ClientError> {
        let mut attempt = 0;
        loop {
            let err = match self.stream_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            self.prepare_retry(attempt, err)?;
            attempt += 1;
        }
    }

    /// Snapshot the server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let resp = self.call(&Json::obj().set("op", Json::str("stats")))?;
        Ok(resp
            .get("stats")
            .map(ServerStats::from_json)
            .unwrap_or_default())
    }

    /// List resident graphs.
    pub fn list_graphs(&mut self) -> Result<Vec<GraphInfo>, ClientError> {
        let resp = self.call(&Json::obj().set("op", Json::str("list_graphs")))?;
        let rows = resp.get("graphs").and_then(Json::as_arr).unwrap_or(&[]);
        Ok(rows.iter().map(|r| graph_info_from(r, "")).collect())
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Json::obj().set("op", Json::str("shutdown")))
            .map(|_| ())
    }
}

/// Decode a graph-info row (or a flattened graph-info response frame);
/// `fallback_id` covers servers that omit `graph_id` in direct replies.
fn graph_info_from(j: &Json, fallback_id: &str) -> GraphInfo {
    let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    GraphInfo {
        graph_id: j
            .get("graph_id")
            .and_then(Json::as_str)
            .unwrap_or(fallback_id)
            .to_string(),
        epoch: u("epoch"),
        delta_seq: u("delta_seq"),
        n_vertices: u("n_vertices") as usize,
        n_edges: u("n_edges") as usize,
        bytes: u("bytes"),
    }
}

/// One step of splitmix64 — same generator as `gpsa::fault`, copied here
/// because that module only exists under the `chaos` feature and retry
/// jitter must work in every build.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed backoff jitter from wall-clock nanos and the target address, so
/// concurrent clients desynchronize without any shared state.
fn jitter_seed(addr: SocketAddr) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    nanos ^ ((addr.port() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter: false,
        };
        let mut rng = 1;
        assert_eq!(p.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(80));
        assert_eq!(p.backoff(4, &mut rng), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff(9, &mut rng), Duration::from_millis(100));
    }

    #[test]
    fn jitter_stays_within_half_to_one_and_a_half() {
        let p = RetryPolicy {
            jitter: true,
            ..RetryPolicy::default_enabled()
        };
        let mut rng = 42;
        for attempt in 0..8 {
            let exp = p
                .base_delay
                .saturating_mul(1u32 << attempt)
                .min(p.max_delay);
            let d = p.backoff(attempt, &mut rng);
            assert!(
                d >= exp.mul_f64(0.5) && d < exp.mul_f64(1.5),
                "{d:?} vs {exp:?}"
            );
        }
    }

    #[test]
    fn retriable_classification() {
        let refused = ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "x"));
        let eof = ClientError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "x"));
        let bad = ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, "x"));
        assert!(refused.retriable());
        assert!(eof.retriable());
        assert!(!bad.retriable(), "a malformed frame won't improve");
        assert!(ClientError::Server(ServeError::ServerBusy("q".into())).retriable());
        assert!(ClientError::Server(ServeError::SlowClient("s".into())).retriable());
        assert!(!ClientError::Server(ServeError::BadRequest("b".into())).retriable());
    }

    #[test]
    fn disabled_policy_never_sleeps() {
        let p = RetryPolicy::disabled();
        assert_eq!(p.max_retries, 0);
        let mut rng = 7;
        assert_eq!(p.backoff(0, &mut rng), Duration::ZERO);
    }
}
