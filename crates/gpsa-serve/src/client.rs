//! A blocking wire-protocol client.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response per connection). For
//! concurrent load, open one client per thread — the replay driver and
//! the integration tests do exactly that.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ServeError;
use crate::job::{AlgorithmSpec, JobResponse, Priority};
use crate::json::Json;
use crate::registry::GraphInfo;
use crate::stats::ServerStats;
use crate::wire::{read_frame, write_frame};

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

/// A submission, client-side.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Which resident graph to run against.
    pub graph_id: String,
    /// What to run.
    pub algorithm: AlgorithmSpec,
    /// Queue class.
    pub priority: Priority,
    /// Wall-clock budget, if any.
    pub deadline: Option<Duration>,
}

impl SubmitRequest {
    /// A normal-priority, no-deadline submission.
    pub fn new(graph_id: impl Into<String>, algorithm: AlgorithmSpec) -> Self {
        SubmitRequest {
            graph_id: graph_id.into(),
            algorithm,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Builder-style: set the queue class.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Builder-style: set the deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Client-side failure: transport errors and server-reported errors are
/// distinct — a `server_busy` rejection is not a broken connection.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (refused, reset, bad frame...).
    Io(io::Error),
    /// The server answered with a typed error.
    Server(ServeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One request/response round trip. Answers with the response object
    /// when `"ok": true`, the server's typed error otherwise.
    fn call(&mut self, req: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, req)?;
        let resp = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ))
        })?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(resp)
        } else {
            let code = resp
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("engine_error");
            let message = resp
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("no message")
                .to_string();
            Err(ClientError::Server(ServeError::from_code(code, message)))
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Json::obj().set("op", Json::str("ping")))
            .map(|_| ())
    }

    /// Open the CSR at `path` (a path on the **server's** filesystem) and
    /// make it resident as `graph_id`. Returns the graph's registry row,
    /// including the epoch this registration produced.
    pub fn register_graph(&mut self, graph_id: &str, path: &str) -> Result<GraphInfo, ClientError> {
        let req = Json::obj()
            .set("op", Json::str("register_graph"))
            .set("graph_id", Json::str(graph_id))
            .set("path", Json::str(path));
        let resp = self.call(&req)?;
        let u = |k: &str| resp.get(k).and_then(Json::as_u64).unwrap_or(0);
        Ok(GraphInfo {
            graph_id: resp
                .get("graph_id")
                .and_then(Json::as_str)
                .unwrap_or(graph_id)
                .to_string(),
            epoch: u("epoch"),
            n_vertices: u("n_vertices") as usize,
            n_edges: u("n_edges") as usize,
            bytes: u("bytes"),
        })
    }

    /// Submit a job and block until the server answers (completion,
    /// cache hit, or typed rejection).
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<JobResponse, ClientError> {
        let mut j = Json::obj()
            .set("op", Json::str("submit"))
            .set("graph_id", Json::str(&req.graph_id))
            .set("algorithm", Json::str(req.algorithm.name()))
            .set("params", req.algorithm.params_json())
            .set("priority", Json::str(req.priority.as_str()));
        if let Some(d) = req.deadline {
            j = j.set("deadline_ms", Json::num(d.as_millis() as u64));
        }
        let resp = self.call(&j)?;
        JobResponse::from_json(&resp).map_err(ClientError::Server)
    }

    /// Snapshot the server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let resp = self.call(&Json::obj().set("op", Json::str("stats")))?;
        Ok(resp
            .get("stats")
            .map(ServerStats::from_json)
            .unwrap_or_default())
    }

    /// List resident graphs.
    pub fn list_graphs(&mut self) -> Result<Vec<GraphInfo>, ClientError> {
        let resp = self.call(&Json::obj().set("op", Json::str("list_graphs")))?;
        let rows = resp.get("graphs").and_then(Json::as_arr).unwrap_or(&[]);
        Ok(rows
            .iter()
            .map(|r| {
                let u = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
                GraphInfo {
                    graph_id: r
                        .get("graph_id")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    epoch: u("epoch"),
                    n_vertices: u("n_vertices") as usize,
                    n_edges: u("n_edges") as usize,
                    bytes: u("bytes"),
                }
            })
            .collect())
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Json::obj().set("op", Json::str("shutdown")))
            .map(|_| ())
    }
}
