//! Server configuration.

use std::path::{Path, PathBuf};
use std::time::Duration;

use gpsa::EngineConfig;

#[cfg(feature = "chaos")]
use crate::fault::ServeFaultPlan;
#[cfg(feature = "chaos")]
use std::sync::Arc;

/// Full configuration for a [`crate::server::start`] instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"`; port `0` picks an ephemeral
    /// port (tests read it back from the handle).
    pub listen: String,
    /// Root for server state: per-job scratch dirs live under
    /// `<work_dir>/jobs/`.
    pub work_dir: PathBuf,
    /// Jobs allowed to run engine supersteps at once; the scheduler spawns
    /// this many runner actors.
    pub max_concurrent_jobs: usize,
    /// Admitted-but-not-yet-running jobs the bounded queue holds before
    /// admission control answers `server_busy`.
    pub queue_capacity: usize,
    /// Budget for resident graph bytes across the registry; a `register`
    /// that would exceed it is refused with `server_busy`. `u64::MAX`
    /// disables the check.
    pub memory_budget_bytes: u64,
    /// Result-cache entries kept (LRU). `0` disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own. `None` means
    /// no default deadline.
    pub default_deadline: Option<Duration>,
    /// Per-job engine template. `work_dir`, `termination`, `resume` and the
    /// watchdog fields are overridden per job; the actor/worker counts,
    /// routing and batching knobs are taken as-is.
    pub engine: EngineConfig,
    /// Durability switch. When on (the default), the server journals every
    /// job state change to `<work_dir>/journal.wal`, persists the graph
    /// registry to `<work_dir>/registry.manifest`, and spills the result
    /// cache to `<work_dir>/cache/` — a restarted server against the same
    /// `work_dir` restores all three and replays incomplete jobs. When
    /// off, state lives in memory only (the pre-durability behavior).
    pub durable: bool,
    /// Once a request frame has *started* arriving, the rest of it must
    /// land within this deadline or the connection is shed with a
    /// retriable `slow_client` error. Idle time **between** frames is
    /// never limited — only a peer stalled mid-frame is shed.
    pub frame_read_timeout: Duration,
    /// OS-level write timeout on accepted connections, bounding how long a
    /// response write can block on a client that stopped reading.
    pub write_timeout: Duration,
    /// Jobs a single tenant may hold queued (not yet running) at once.
    /// The `queue_capacity` global cap still applies on top; a tenant at
    /// its own cap is refused with `quota_exceeded` while other tenants
    /// keep being admitted.
    pub tenant_max_queued: usize,
    /// Jobs a single tenant may have running at once. The scheduler's
    /// fair-queue dispatch skips a tenant at this cap and serves the
    /// others; the job stays queued, nothing is shed.
    pub tenant_max_inflight: usize,
    /// Scratch-byte budget per tenant: the summed `estimated cost` of a
    /// tenant's queued + running jobs (graph value bytes) may not exceed
    /// this. `u64::MAX` disables the check.
    pub tenant_scratch_budget_bytes: u64,
    /// Per-tenant scheduling weights for deficit-weighted round-robin.
    /// A tenant absent from this list gets weight 1. Weight 0 is clamped
    /// to 1. Tenants split dispatch slots proportionally to weight when
    /// contended.
    pub tenant_weights: Vec<(String, u32)>,
    /// Result values per streaming chunk frame. Responses larger than
    /// this are delivered as a start/chunk.../end frame sequence when the
    /// client asks for `stream: true`; each chunk carries its own CRC.
    /// Also caps the client's per-frame read allowance on streamed
    /// replies, bounding peak result memory on both sides.
    pub stream_chunk_values: usize,
    /// Live-graph auto-compaction trigger: when a mutation leaves a
    /// graph's overlay holding more than `auto_compact_ratio × base
    /// edges` delta edges, the scheduler queues a compaction for that
    /// graph on its own authority. `0.0` disables auto-compaction.
    pub auto_compact_ratio: f64,
    /// How long a completed idempotency-keyed result is honored across
    /// restarts. Boot-time journal replay reaps incomplete keyed jobs
    /// whose submission is older than this instead of re-running them
    /// against a reply channel nobody holds. `None` means keys never
    /// expire.
    pub idem_key_ttl: Option<Duration>,
    /// Scripted serving-layer fault plan (`--features chaos` only).
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<ServeFaultPlan>>,
}

impl ServeConfig {
    /// Machine-sized defaults under `work_dir`.
    pub fn new<P: AsRef<Path>>(work_dir: P) -> Self {
        let work_dir = work_dir.as_ref().to_path_buf();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            engine: EngineConfig::new(&work_dir),
            work_dir,
            max_concurrent_jobs: (cores / 2).max(1),
            queue_capacity: 64,
            memory_budget_bytes: u64::MAX,
            cache_capacity: 128,
            default_deadline: None,
            durable: true,
            frame_read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            tenant_max_queued: 32,
            tenant_max_inflight: usize::MAX,
            tenant_scratch_budget_bytes: u64::MAX,
            tenant_weights: Vec::new(),
            stream_chunk_values: 1 << 16,
            auto_compact_ratio: 0.0,
            idem_key_ttl: None,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }

    /// A small fixed configuration for tests: 2 concurrent jobs, a 4-deep
    /// queue, 16 cache entries, and the [`EngineConfig::small`] template.
    pub fn small<P: AsRef<Path>>(work_dir: P) -> Self {
        let work_dir = work_dir.as_ref().to_path_buf();
        ServeConfig {
            engine: EngineConfig::small(&work_dir),
            max_concurrent_jobs: 2,
            queue_capacity: 4,
            cache_capacity: 16,
            ..ServeConfig::new(&work_dir)
        }
    }

    /// Builder-style: set the bind address.
    pub fn with_listen(mut self, listen: impl Into<String>) -> Self {
        self.listen = listen.into();
        self
    }

    /// Builder-style: set the concurrent-job cap (clamped to at least 1).
    pub fn with_max_concurrent_jobs(mut self, n: usize) -> Self {
        self.max_concurrent_jobs = n.max(1);
        self
    }

    /// Builder-style: set the admission-queue depth.
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style: set the result-cache capacity (0 disables).
    pub fn with_cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Builder-style: set the resident-graph memory budget.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Builder-style: set the default per-job deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Builder-style: replace the per-job engine template.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style: turn durability off (or back on).
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Builder-style: set the mid-frame read deadline for accepted
    /// connections.
    pub fn with_frame_read_timeout(mut self, timeout: Duration) -> Self {
        self.frame_read_timeout = timeout;
        self
    }

    /// Builder-style: set the response write timeout.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Builder-style: set the per-tenant queued-job cap (clamped to at
    /// least 1).
    pub fn with_tenant_max_queued(mut self, n: usize) -> Self {
        self.tenant_max_queued = n.max(1);
        self
    }

    /// Builder-style: set the per-tenant in-flight cap (clamped to at
    /// least 1).
    pub fn with_tenant_max_inflight(mut self, n: usize) -> Self {
        self.tenant_max_inflight = n.max(1);
        self
    }

    /// Builder-style: set the per-tenant scratch-byte budget.
    pub fn with_tenant_scratch_budget(mut self, bytes: u64) -> Self {
        self.tenant_scratch_budget_bytes = bytes;
        self
    }

    /// Builder-style: set one tenant's scheduling weight (clamped to at
    /// least 1). May be called repeatedly for different tenants; the
    /// last setting for a tenant wins.
    pub fn with_tenant_weight(mut self, tenant: impl Into<String>, weight: u32) -> Self {
        let tenant = tenant.into();
        self.tenant_weights.retain(|(t, _)| *t != tenant);
        self.tenant_weights.push((tenant, weight.max(1)));
        self
    }

    /// Builder-style: set the streaming chunk size in values (clamped to
    /// at least 1).
    pub fn with_stream_chunk_values(mut self, n: usize) -> Self {
        self.stream_chunk_values = n.max(1);
        self
    }

    /// Builder-style: set the auto-compaction delta/base ratio (negative
    /// values clamp to 0.0, which disables the trigger).
    pub fn with_auto_compact_ratio(mut self, ratio: f64) -> Self {
        self.auto_compact_ratio = ratio.max(0.0);
        self
    }

    /// Builder-style: set the idempotency-key time-to-live.
    pub fn with_idem_key_ttl(mut self, ttl: Duration) -> Self {
        self.idem_key_ttl = Some(ttl);
        self
    }

    /// The DRR weight for `tenant` (1 unless configured otherwise).
    pub fn tenant_weight(&self, tenant: &str) -> u32 {
        self.tenant_weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, w)| (*w).max(1))
            .unwrap_or(1)
    }

    /// Builder-style: install a scripted serving-layer fault plan.
    #[cfg(feature = "chaos")]
    pub fn with_fault_plan(mut self, plan: Arc<ServeFaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Where job `job_id` keeps its private scratch state.
    pub fn job_scratch_dir(&self, job_id: u64) -> PathBuf {
        self.work_dir.join("jobs").join(format!("job-{job_id}"))
    }

    /// The job journal's path under this config's `work_dir`.
    pub fn journal_path(&self) -> PathBuf {
        self.work_dir.join("journal.wal")
    }

    /// The registry manifest's path under this config's `work_dir`.
    pub fn manifest_path(&self) -> PathBuf {
        self.work_dir.join("registry.manifest")
    }

    /// The result cache's spill directory under this config's `work_dir`.
    pub fn cache_spill_dir(&self) -> PathBuf {
        self.work_dir.join("cache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::new("/tmp/serve");
        assert!(c.max_concurrent_jobs >= 1);
        assert!(c.queue_capacity >= 1);
        assert_eq!(c.memory_budget_bytes, u64::MAX);
        assert!(c.listen.ends_with(":0"));
    }

    #[test]
    fn scratch_dirs_are_job_unique() {
        let c = ServeConfig::small("/tmp/serve");
        let a = c.job_scratch_dir(1);
        let b = c.job_scratch_dir(2);
        assert_ne!(a, b);
        assert!(a.starts_with("/tmp/serve"));
    }

    #[test]
    fn builders_apply() {
        let c = ServeConfig::small("/tmp/serve")
            .with_max_concurrent_jobs(0)
            .with_queue_capacity(7)
            .with_cache_capacity(3)
            .with_memory_budget(1024)
            .with_default_deadline(Duration::from_secs(9))
            .with_listen("0.0.0.0:7171")
            .with_durable(false)
            .with_frame_read_timeout(Duration::from_millis(250))
            .with_write_timeout(Duration::from_secs(2))
            .with_tenant_max_queued(0)
            .with_tenant_max_inflight(2)
            .with_tenant_scratch_budget(4096)
            .with_tenant_weight("heavy", 0)
            .with_tenant_weight("heavy", 4)
            .with_stream_chunk_values(0)
            .with_auto_compact_ratio(-1.0)
            .with_idem_key_ttl(Duration::from_secs(60));
        assert_eq!(c.max_concurrent_jobs, 1);
        assert_eq!(c.queue_capacity, 7);
        assert_eq!(c.cache_capacity, 3);
        assert_eq!(c.memory_budget_bytes, 1024);
        assert_eq!(c.default_deadline, Some(Duration::from_secs(9)));
        assert_eq!(c.listen, "0.0.0.0:7171");
        assert!(!c.durable);
        assert_eq!(c.frame_read_timeout, Duration::from_millis(250));
        assert_eq!(c.write_timeout, Duration::from_secs(2));
        assert_eq!(c.tenant_max_queued, 1, "clamped to at least 1");
        assert_eq!(c.tenant_max_inflight, 2);
        assert_eq!(c.tenant_scratch_budget_bytes, 4096);
        assert_eq!(c.tenant_weight("heavy"), 4, "last weight setting wins");
        assert_eq!(c.tenant_weight("other"), 1, "unconfigured tenants get 1");
        assert_eq!(c.stream_chunk_values, 1, "clamped to at least 1");
        assert_eq!(c.auto_compact_ratio, 0.0, "negative ratio disables");
        assert_eq!(c.idem_key_ttl, Some(Duration::from_secs(60)));
    }

    #[test]
    fn durable_paths_live_under_work_dir() {
        let c = ServeConfig::small("/tmp/serve");
        assert!(c.durable, "durability is on by default");
        assert_eq!(c.journal_path(), PathBuf::from("/tmp/serve/journal.wal"));
        assert_eq!(
            c.manifest_path(),
            PathBuf::from("/tmp/serve/registry.manifest")
        );
        assert_eq!(c.cache_spill_dir(), PathBuf::from("/tmp/serve/cache"));
    }
}
