//! Typed server errors and their wire codes.

use std::fmt;

/// Everything a request can fail with. Each variant has a stable wire code
/// (see [`ServeError::code`]) so clients can branch without string-matching
/// messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the job: the bounded queue is full or the
    /// resident-memory budget would be exceeded. The client may retry
    /// later — in-flight work is unaffected.
    ServerBusy(String),
    /// The job's deadline expired (in the queue, or its run tripped the
    /// engine watchdog) and it was torn down.
    DeadlineExceeded(String),
    /// The request names a `graph_id` that is not registered.
    UnknownGraph(String),
    /// The request is malformed (missing fields, unknown algorithm...).
    BadRequest(String),
    /// The engine failed while running the job.
    Engine(String),
    /// The connection stalled mid-frame past the server's per-connection
    /// deadline and was shed to free the handler thread. The client may
    /// reconnect and retry.
    SlowClient(String),
    /// A per-tenant quota (queued jobs, in-flight jobs, or scratch-byte
    /// budget) refused the job. Only the offending tenant is affected;
    /// other tenants keep being served. Retriable — the quota frees up
    /// as the tenant's jobs drain.
    QuotaExceeded(String),
    /// The job was reaped before producing a result: its client
    /// disconnected, or boot-time replay expired it. Not retriable as-is
    /// (the submitter is gone); a fresh submission starts a fresh job.
    Cancelled(String),
}

impl ServeError {
    /// The stable wire code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::ServerBusy(_) => "server_busy",
            ServeError::DeadlineExceeded(_) => "deadline_exceeded",
            ServeError::UnknownGraph(_) => "unknown_graph",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Engine(_) => "engine_error",
            ServeError::SlowClient(_) => "slow_client",
            ServeError::QuotaExceeded(_) => "quota_exceeded",
            ServeError::Cancelled(_) => "cancelled",
        }
    }

    /// Whether a client may expect the same request to succeed if simply
    /// retried later. Admission-control rejections and shed connections
    /// are transient (nothing about the request itself was wrong);
    /// everything else needs the request or the server fixed first.
    /// Error frames carry this as a `"retriable"` field so non-Rust
    /// clients can branch without a code table.
    pub fn retriable(&self) -> bool {
        matches!(
            self,
            ServeError::ServerBusy(_) | ServeError::SlowClient(_) | ServeError::QuotaExceeded(_)
        )
    }

    /// Human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            ServeError::ServerBusy(m)
            | ServeError::DeadlineExceeded(m)
            | ServeError::UnknownGraph(m)
            | ServeError::BadRequest(m)
            | ServeError::Engine(m)
            | ServeError::SlowClient(m)
            | ServeError::QuotaExceeded(m)
            | ServeError::Cancelled(m) => m,
        }
    }

    /// Rebuild from a wire code + message (the client-side inverse of
    /// [`ServeError::code`]). Unknown codes map to [`ServeError::Engine`].
    pub fn from_code(code: &str, message: String) -> ServeError {
        match code {
            "server_busy" => ServeError::ServerBusy(message),
            "deadline_exceeded" => ServeError::DeadlineExceeded(message),
            "unknown_graph" => ServeError::UnknownGraph(message),
            "bad_request" => ServeError::BadRequest(message),
            "slow_client" => ServeError::SlowClient(message),
            "quota_exceeded" => ServeError::QuotaExceeded(message),
            "cancelled" => ServeError::Cancelled(message),
            _ => ServeError::Engine(message),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        let all = [
            ServeError::ServerBusy("q".into()),
            ServeError::DeadlineExceeded("d".into()),
            ServeError::UnknownGraph("g".into()),
            ServeError::BadRequest("b".into()),
            ServeError::Engine("e".into()),
            ServeError::SlowClient("s".into()),
            ServeError::QuotaExceeded("t".into()),
            ServeError::Cancelled("c".into()),
        ];
        for e in all {
            let back = ServeError::from_code(e.code(), e.message().to_string());
            assert_eq!(back, e);
        }
    }

    #[test]
    fn only_transient_failures_are_retriable() {
        assert!(ServeError::ServerBusy("q".into()).retriable());
        assert!(ServeError::SlowClient("s".into()).retriable());
        assert!(ServeError::QuotaExceeded("t".into()).retriable());
        assert!(!ServeError::Cancelled("c".into()).retriable());
        assert!(!ServeError::DeadlineExceeded("d".into()).retriable());
        assert!(!ServeError::UnknownGraph("g".into()).retriable());
        assert!(!ServeError::BadRequest("b".into()).retriable());
        assert!(!ServeError::Engine("e".into()).retriable());
    }
}
