//! Serving-layer fault injection — the network/journal half of the chaos
//! harness (`--features chaos`).
//!
//! The engine's [`gpsa::fault::FaultPlan`] injects faults *inside* a
//! superstep; a [`ServeFaultPlan`] injects them at the serving layer's
//! two durability boundaries instead: the wire (connections dropped
//! mid-frame, writers that stall past the client's read deadline) and the
//! job journal (torn tails, crash-at-state aborts). Same discipline as
//! the engine plan: every point fires **at most once**, schedules are
//! reproducible from a seed via the shared
//! [`gpsa::fault::splitmix64`] generator, and everything compiles away
//! without the feature.
//!
//! Hooks live in the server's response writer ([`ServeFaultPlan::on_response`],
//! consulted once per response frame) and in
//! [`crate::journal::JobJournal::append`]
//! ([`ServeFaultPlan::on_journal_append`], consulted once per record).
//! `CrashAtJournal` points do not return — they [`std::process::abort`],
//! which is exactly a `kill -9` as far as the restarted server can tell;
//! they are exercised from subprocess tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use gpsa::fault::splitmix64;

use crate::journal::JournalState;

/// One scripted serving-layer injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Write roughly half of response frame `nth_response` (0-based,
    /// counted across all connections), then sever the connection — a
    /// peer vanishing mid-frame.
    DropConnMidFrame {
        /// Which response frame dies.
        nth_response: u64,
    },
    /// Stall for `stall_ms` in the middle of writing response frame
    /// `nth_response`, then finish it — a writer outliving the client's
    /// read deadline.
    StalledWriter {
        /// Which response frame stalls.
        nth_response: u64,
        /// How long it stalls.
        stall_ms: u64,
    },
    /// Journal append number `nth_append` (0-based, any state) writes
    /// only a prefix of its record and skips the fsync — a crash tearing
    /// the journal tail. Recovery must truncate back to the last whole
    /// record.
    TornJournalTail {
        /// Which append tears.
        nth_append: u64,
    },
    /// Abort the whole process (SIGABRT, unclean by construction) as the
    /// journal is about to append its `nth` record of `state` — a crash
    /// pinned to an exact journal state.
    CrashAtJournal {
        /// Which record state triggers the crash.
        state: JournalState,
        /// 0-based occurrence count within that state.
        nth: u64,
    },
    /// Delta-log append number `nth` (0-based, counted across graphs)
    /// writes only half of its framed record — unsynced — and then the
    /// registry aborts the process: a crash tearing the edge-delta log
    /// mid-`add_edges`/`remove_edges`. Recovery replays only whole
    /// batches, so the restarted server must come back on the clean
    /// pre-mutation snapshot.
    TornDeltaAppend {
        /// Which delta append tears.
        nth: u64,
    },
    /// Abort the process inside `finish_compact` of compaction number
    /// `nth` (0-based), pinned to one side of the manifest rewrite that
    /// commits the new epoch: `BeforeManifest` must recover the
    /// pre-compaction live state (base ⊕ delta), `AfterManifest` the
    /// freshly compacted epoch.
    CrashAtCompact {
        /// Which compaction crashes.
        nth: u64,
        /// Which side of the commit point.
        point: CompactPoint,
    },
    /// Sever the connection just before streamed result chunk
    /// `nth_chunk` (0-based, counted across all streams) goes out — a
    /// client vanishing mid-download. The server must shrug: the job
    /// already committed, every other connection keeps its stream.
    DisconnectMidStream {
        /// Which stream chunk dies.
        nth_chunk: u64,
    },
}

/// A client-side overload shape for the soak harness. Unlike the
/// injection points above these never hook the server — they script the
/// *load generator*, so the same seed always replays the same abuse
/// pattern against a live server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadWave {
    /// `burst` submissions fired back-to-back, then `idle_ms` of
    /// silence — the thundering-herd shape.
    BurstStorm {
        /// Submissions in the burst.
        burst: u32,
        /// Quiet period after it.
        idle_ms: u64,
    },
    /// A streaming client that dawdles `delay_ms` between frame reads,
    /// holding its connection (but, correctly, *not* a runner) open.
    SlowConsumer {
        /// Pause between frame reads.
        delay_ms: u64,
    },
    /// `n` back-to-back submissions billed to one flooding tenant while
    /// a light tenant keeps its trickle going.
    TenantFlood {
        /// Flood size.
        n: u32,
    },
}

impl OverloadWave {
    /// Derive a reproducible `len`-wave schedule from `seed` alone.
    pub fn schedule(seed: u64, len: usize) -> Vec<OverloadWave> {
        let mut state = seed;
        (0..len)
            .map(|_| match splitmix64(&mut state) % 3 {
                0 => OverloadWave::BurstStorm {
                    burst: 4 + (splitmix64(&mut state) % 12) as u32,
                    idle_ms: 5 + splitmix64(&mut state) % 40,
                },
                1 => OverloadWave::SlowConsumer {
                    delay_ms: 5 + splitmix64(&mut state) % 30,
                },
                _ => OverloadWave::TenantFlood {
                    n: 8 + (splitmix64(&mut state) % 16) as u32,
                },
            })
            .collect()
    }
}

/// The two interesting instants around compaction's commit point (the
/// atomic manifest rewrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactPoint {
    /// New CSR fully written and installed in memory, manifest not yet
    /// rewritten: on-disk truth is still the old epoch.
    BeforeManifest = 0,
    /// Manifest rewritten, old-epoch files not yet cleaned up: on-disk
    /// truth is the new epoch.
    AfterManifest = 1,
}

/// What the response-write hook should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Write the frame normally.
    None,
    /// Write a partial frame, then drop the connection.
    DropMidFrame,
    /// Stall mid-frame for this long, then finish the write.
    Stall(Duration),
}

/// What the journal-append hook should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// Append normally.
    None,
    /// Write a torn (partial, unsynced) record.
    Torn,
    /// Abort the process before the record is written.
    Crash,
}

/// What the delta-log append hook should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaFault {
    /// Append normally.
    None,
    /// Write half the framed record, skip the fsync, and abort.
    TornAbort,
}

/// A seeded, fire-once serving-layer fault schedule.
#[derive(Debug, Default)]
pub struct ServeFaultPlan {
    seed: u64,
    points: Vec<(ServeFault, AtomicBool)>,
    responses: AtomicU64,
    stream_chunks: AtomicU64,
    appends: AtomicU64,
    appends_by_state: [AtomicU64; JournalState::COUNT],
    delta_appends: AtomicU64,
    compact_checks: [AtomicU64; 2],
}

impl ServeFaultPlan {
    /// An empty plan tagged with `seed` (fill in points with
    /// [`ServeFaultPlan::with`]).
    pub fn new(seed: u64) -> Self {
        ServeFaultPlan {
            seed,
            ..ServeFaultPlan::default()
        }
    }

    /// Derive `n_points` network injections (drops, stalls, torn tails —
    /// never crashes, which need a subprocess harness) from `seed` alone.
    /// The same seed always yields the same schedule.
    pub fn scripted(seed: u64, n_points: usize) -> Self {
        let mut plan = ServeFaultPlan::new(seed);
        let mut state = seed;
        for _ in 0..n_points {
            let kind = splitmix64(&mut state) % 3;
            let nth = splitmix64(&mut state) % 8;
            let spec = match kind {
                0 => ServeFault::DropConnMidFrame { nth_response: nth },
                1 => ServeFault::StalledWriter {
                    nth_response: nth,
                    stall_ms: 20 + splitmix64(&mut state) % 80,
                },
                _ => ServeFault::TornJournalTail { nth_append: nth },
            };
            plan = plan.with(spec);
        }
        plan
    }

    /// Add one injection point.
    pub fn with(mut self, spec: ServeFault) -> Self {
        self.points.push((spec, AtomicBool::new(false)));
        self
    }

    /// The seed this plan was built from (reporting only).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection points in this plan.
    pub fn specs(&self) -> impl Iterator<Item = ServeFault> + '_ {
        self.points.iter().map(|(s, _)| *s)
    }

    fn fire(&self, idx: usize) -> bool {
        self.points[idx]
            .1
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Consulted once per response frame (any connection). Counts the
    /// frame and answers with the fault due for it, if any.
    pub fn on_response(&self) -> ResponseFault {
        let n = self.responses.fetch_add(1, Ordering::AcqRel);
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let fault = match *spec {
                ServeFault::DropConnMidFrame { nth_response } if nth_response == n => {
                    ResponseFault::DropMidFrame
                }
                ServeFault::StalledWriter {
                    nth_response,
                    stall_ms,
                } if nth_response == n => ResponseFault::Stall(Duration::from_millis(stall_ms)),
                _ => continue,
            };
            if self.fire(i) {
                return fault;
            }
        }
        ResponseFault::None
    }

    /// Consulted once per streamed result chunk (any stream), before it
    /// is written. Returns `true` when the server should sever the
    /// connection instead.
    pub fn on_stream_chunk(&self) -> bool {
        let n = self.stream_chunks.fetch_add(1, Ordering::AcqRel);
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if let ServeFault::DisconnectMidStream { nth_chunk } = *spec {
                if nth_chunk == n && self.fire(i) {
                    return true;
                }
            }
        }
        false
    }

    /// Consulted once per journal record, before it is written. Counts
    /// the append (globally and per state) and answers with the fault due
    /// for it. A [`JournalFault::Crash`] answer is advisory only in the
    /// sense that the *journal* performs the abort — this method never
    /// panics or aborts itself, so it stays unit-testable.
    pub fn on_journal_append(&self, state: JournalState) -> JournalFault {
        let n = self.appends.fetch_add(1, Ordering::AcqRel);
        let n_state = self.appends_by_state[state as usize].fetch_add(1, Ordering::AcqRel);
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let fault = match *spec {
                ServeFault::TornJournalTail { nth_append } if nth_append == n => JournalFault::Torn,
                ServeFault::CrashAtJournal { state: s, nth } if s == state && nth == n_state => {
                    JournalFault::Crash
                }
                _ => continue,
            };
            if self.fire(i) {
                return fault;
            }
        }
        JournalFault::None
    }

    /// Consulted once per delta-log append (any graph), before the
    /// record is written. The registry performs the actual half-write
    /// and abort; this method only counts and answers, so it stays
    /// unit-testable.
    pub fn on_delta_append(&self) -> DeltaFault {
        let n = self.delta_appends.fetch_add(1, Ordering::AcqRel);
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if let ServeFault::TornDeltaAppend { nth } = *spec {
                if nth == n && self.fire(i) {
                    return DeltaFault::TornAbort;
                }
            }
        }
        DeltaFault::None
    }

    /// Consulted at `point` of each compaction's commit sequence.
    /// Returns `true` when the registry should abort the process there.
    pub fn on_compact(&self, point: CompactPoint) -> bool {
        let n = self.compact_checks[point as usize].fetch_add(1, Ordering::AcqRel);
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if let ServeFault::CrashAtCompact { nth, point: p } = *spec {
                if p == point && nth == n && self.fire(i) {
                    return true;
                }
            }
        }
        false
    }

    /// How many injection points have fired so far.
    pub fn fired(&self) -> usize {
        self.points
            .iter()
            .filter(|(_, f)| f.load(Ordering::Acquire))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plans_are_reproducible() {
        let a: Vec<_> = ServeFaultPlan::scripted(11, 6).specs().collect();
        let b: Vec<_> = ServeFaultPlan::scripted(11, 6).specs().collect();
        let c: Vec<_> = ServeFaultPlan::scripted(12, 6).specs().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|s| !matches!(s, ServeFault::CrashAtJournal { .. })));
    }

    #[test]
    fn response_points_fire_once_at_their_frame() {
        let plan = ServeFaultPlan::new(1).with(ServeFault::DropConnMidFrame { nth_response: 2 });
        assert_eq!(plan.on_response(), ResponseFault::None); // frame 0
        assert_eq!(plan.on_response(), ResponseFault::None); // frame 1
        assert_eq!(plan.on_response(), ResponseFault::DropMidFrame); // frame 2
        assert_eq!(plan.on_response(), ResponseFault::None); // fired already
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn journal_points_match_global_and_per_state_counts() {
        let plan = ServeFaultPlan::new(2)
            .with(ServeFault::TornJournalTail { nth_append: 1 })
            .with(ServeFault::CrashAtJournal {
                state: JournalState::Started,
                nth: 1,
            });
        // Append 0 (submitted): nothing due.
        assert_eq!(
            plan.on_journal_append(JournalState::Submitted),
            JournalFault::None
        );
        // Append 1 (started #0): torn tail by global count.
        assert_eq!(
            plan.on_journal_append(JournalState::Started),
            JournalFault::Torn
        );
        // Append 2 (started #1): crash by per-state count.
        assert_eq!(
            plan.on_journal_append(JournalState::Started),
            JournalFault::Crash
        );
        assert_eq!(
            plan.on_journal_append(JournalState::Started),
            JournalFault::None
        );
    }

    #[test]
    fn delta_and_compact_points_fire_once() {
        let plan = ServeFaultPlan::new(4)
            .with(ServeFault::TornDeltaAppend { nth: 1 })
            .with(ServeFault::CrashAtCompact {
                nth: 0,
                point: CompactPoint::AfterManifest,
            });
        assert_eq!(plan.on_delta_append(), DeltaFault::None);
        assert_eq!(plan.on_delta_append(), DeltaFault::TornAbort);
        assert_eq!(plan.on_delta_append(), DeltaFault::None);
        assert!(!plan.on_compact(CompactPoint::BeforeManifest));
        assert!(plan.on_compact(CompactPoint::AfterManifest));
        assert!(!plan.on_compact(CompactPoint::AfterManifest));
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn stream_chunk_points_fire_once_at_their_chunk() {
        let plan = ServeFaultPlan::new(5).with(ServeFault::DisconnectMidStream { nth_chunk: 1 });
        assert!(!plan.on_stream_chunk());
        assert!(plan.on_stream_chunk());
        assert!(!plan.on_stream_chunk());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn overload_schedules_are_reproducible() {
        let a = OverloadWave::schedule(9, 8);
        let b = OverloadWave::schedule(9, 8);
        let c = OverloadWave::schedule(10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn stall_points_carry_their_duration() {
        let plan = ServeFaultPlan::new(3).with(ServeFault::StalledWriter {
            nth_response: 0,
            stall_ms: 40,
        });
        assert_eq!(
            plan.on_response(),
            ResponseFault::Stall(Duration::from_millis(40))
        );
    }
}
