//! Job model: what a client submits, what the server runs, what comes
//! back.
//!
//! Vertex values cross the wire as **u32 bit patterns** (`f32::to_bits`
//! for float-valued programs), so a served result is byte-for-byte
//! identical to a direct in-process [`Engine::run`] — decimal rendering
//! of floats could silently round and the acceptance tests compare bits.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::Sender;
use gpsa::programs::{Bfs, ConnectedComponents, PageRank, Sssp};
use gpsa::{Engine, EngineError, Termination};
use gpsa_graph::GraphSnapshot;
use gpsa_metrics::timer::Timer;

use crate::error::ServeError;
use crate::json::Json;
use crate::stats::ServerStats;

/// Admission priority. High-priority jobs are popped from the queue
/// before normal ones; within a class the order is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Jumps the normal queue.
    High,
    /// The default class.
    #[default]
    Normal,
}

impl Priority {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
        }
    }

    /// Parse a wire name; anything but `"high"` is normal.
    pub fn parse(s: &str) -> Priority {
        if s == "high" {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

/// What kind of value array a job produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// `f32` values shipped as `to_bits()` patterns (PageRank).
    F32,
    /// Plain `u32` values (BFS levels, CC labels, SSSP distances).
    U32,
}

impl ValueType {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ValueType::F32 => "f32",
            ValueType::U32 => "u32",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<ValueType> {
        match s {
            "f32" => Some(ValueType::F32),
            "u32" => Some(ValueType::U32),
            _ => None,
        }
    }
}

/// A parsed, validated algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSpec {
    /// PageRank for a fixed number of supersteps.
    PageRank {
        /// Damping factor.
        damping: f32,
        /// Supersteps to run.
        supersteps: u64,
    },
    /// BFS hop distances from `root`.
    Bfs {
        /// Source vertex.
        root: u32,
    },
    /// Connected components by min-label propagation.
    Cc,
    /// SSSP with the engine's deterministic synthetic weights.
    Sssp {
        /// Source vertex.
        root: u32,
    },
}

/// Quiescence bound applied to BFS / CC / SSSP jobs.
const QUIESCENCE_CAP: u64 = 10_000;

impl AlgorithmSpec {
    /// Wire name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::PageRank { .. } => "pagerank",
            AlgorithmSpec::Bfs { .. } => "bfs",
            AlgorithmSpec::Cc => "cc",
            AlgorithmSpec::Sssp { .. } => "sssp",
        }
    }

    /// Parse from the wire `algorithm` + `params` fields. Defaults:
    /// PageRank `damping=0.85, supersteps=5`; BFS/SSSP `root=0`.
    pub fn parse(algorithm: &str, params: &Json) -> Result<AlgorithmSpec, ServeError> {
        let f = |k: &str| params.get(k).and_then(Json::as_f64);
        let u = |k: &str| params.get(k).and_then(Json::as_u64);
        match algorithm {
            "pagerank" => {
                let damping = f("damping").unwrap_or(0.85) as f32;
                if !(0.0..=1.0).contains(&damping) {
                    return Err(ServeError::BadRequest(format!(
                        "damping {damping} outside [0, 1]"
                    )));
                }
                Ok(AlgorithmSpec::PageRank {
                    damping,
                    supersteps: u("supersteps").unwrap_or(5),
                })
            }
            "bfs" => Ok(AlgorithmSpec::Bfs {
                root: u("root").unwrap_or(0) as u32,
            }),
            "cc" => Ok(AlgorithmSpec::Cc),
            "sssp" => Ok(AlgorithmSpec::Sssp {
                root: u("root").unwrap_or(0) as u32,
            }),
            other => Err(ServeError::BadRequest(format!(
                "unknown algorithm {other:?} (want pagerank|bfs|cc|sssp)"
            ))),
        }
    }

    /// The wire `params` object for this spec (client-side request
    /// building; the server re-canonicalizes on parse).
    pub fn params_json(&self) -> Json {
        match *self {
            AlgorithmSpec::PageRank {
                damping,
                supersteps,
            } => Json::obj()
                .set("damping", Json::float(damping as f64))
                .set("supersteps", Json::num(supersteps)),
            AlgorithmSpec::Bfs { root } | AlgorithmSpec::Sssp { root } => {
                Json::obj().set("root", Json::num(root as u64))
            }
            AlgorithmSpec::Cc => Json::obj(),
        }
    }

    /// The canonical parameter string used in cache keys. Floats are
    /// rendered by bit pattern so two requests that parse to the same
    /// `f32` always share a key.
    pub fn canonical_params(&self) -> String {
        match *self {
            AlgorithmSpec::PageRank {
                damping,
                supersteps,
            } => {
                format!(
                    "damping_bits={},supersteps={}",
                    damping.to_bits(),
                    supersteps
                )
            }
            AlgorithmSpec::Bfs { root } | AlgorithmSpec::Sssp { root } => format!("root={root}"),
            AlgorithmSpec::Cc => String::new(),
        }
    }

    /// The termination mode this algorithm runs under.
    pub fn termination(&self) -> Termination {
        match *self {
            AlgorithmSpec::PageRank { supersteps, .. } => Termination::Supersteps(supersteps),
            AlgorithmSpec::Bfs { .. } | AlgorithmSpec::Cc | AlgorithmSpec::Sssp { .. } => {
                Termination::Quiescence {
                    max_supersteps: QUIESCENCE_CAP,
                }
            }
        }
    }

    /// The value representation this algorithm produces.
    pub fn value_type(&self) -> ValueType {
        match self {
            AlgorithmSpec::PageRank { .. } => ValueType::F32,
            _ => ValueType::U32,
        }
    }
}

/// The tenant id used when a submission carries none.
pub const DEFAULT_TENANT: &str = "default";

/// A validated submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which resident graph to run against.
    pub graph_id: String,
    /// What to run.
    pub algorithm: AlgorithmSpec,
    /// Queue class.
    pub priority: Priority,
    /// Wall-clock budget from submission to completion, if any.
    pub deadline: Option<Duration>,
    /// Client-supplied idempotency key. Two submissions with the same key
    /// are the same logical job: the second attaches to the first's
    /// in-flight run or is answered from its committed result, even
    /// across a server restart. Keys are journaled with the job.
    pub idempotency_key: Option<String>,
    /// Which tenant this job bills against. Quotas and fair-queue
    /// scheduling key on this; submissions without a `tenant_id` land on
    /// [`DEFAULT_TENANT`].
    pub tenant: String,
}

/// A shared cancellation flag between a connection thread and the
/// scheduler. Set when the submitting client disconnects (or its deadline
/// lapses with nobody waiting); the scheduler reaps the job at the next
/// opportunity — queued jobs immediately, running jobs when they finish.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flip the token. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// What a completed run produced (the cacheable part of a response).
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// How to interpret `values_u32`.
    pub value_type: ValueType,
    /// Final vertex values as u32 bit patterns, shared with the cache.
    pub values_u32: Arc<Vec<u32>>,
    /// Supersteps the run executed.
    pub supersteps: u64,
    /// Messages folded by compute actors.
    pub messages: u64,
    /// CSR body words dispatchers actually read (frontier-aware selective
    /// dispatch; see `RunReport::edges_streamed`). 0 for cached results
    /// parsed from pre-counter journals.
    pub edges_streamed: u64,
    /// CSR body words skipped by sparse seeks.
    pub edges_skipped: u64,
    /// Mean frontier density over the run's supersteps.
    pub mean_frontier_density: f64,
    /// Self-healing retries the run needed (0 for a clean run).
    pub retry_attempts: u32,
    /// Per-superstep phase timings (dispatch/fold/commit/slab-wait µs).
    /// Empty for cached results: timing describes a run, not a value set,
    /// so the cache does not spill it.
    pub phases: Vec<gpsa::PhaseBreakdown>,
}

impl JobOutcome {
    /// The values decoded as `f32` (PageRank), if that is their type.
    pub fn values_f32(&self) -> Option<Vec<f32>> {
        match self.value_type {
            ValueType::F32 => Some(self.values_u32.iter().map(|b| f32::from_bits(*b)).collect()),
            ValueType::U32 => None,
        }
    }
}

/// A full response to one submission.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Server-assigned job id (also assigned to cache-hit answers).
    pub job_id: u64,
    /// `true` when the result came from the cache and no superstep ran.
    pub cache_hit: bool,
    /// The result payload.
    pub outcome: Arc<JobOutcome>,
    /// Time spent waiting in the admission queue (zero for cache hits).
    pub queue_wait: Duration,
    /// Time spent running the engine (zero for cache hits).
    pub run_time: Duration,
    /// Server counters at reply time.
    pub stats: ServerStats,
}

impl JobResponse {
    /// Render as the protocol's success frame.
    pub fn to_json(&self) -> Json {
        let values: Vec<Json> = self
            .outcome
            .values_u32
            .iter()
            .map(|b| Json::num(*b as u64))
            .collect();
        Json::obj()
            .set("ok", Json::Bool(true))
            .set("job_id", Json::num(self.job_id))
            .set("cache_hit", Json::Bool(self.cache_hit))
            .set("value_type", Json::str(self.outcome.value_type.as_str()))
            .set("values_u32", Json::Arr(values))
            .set("supersteps", Json::num(self.outcome.supersteps))
            .set("messages", Json::num(self.outcome.messages))
            .set("edges_streamed", Json::num(self.outcome.edges_streamed))
            .set("edges_skipped", Json::num(self.outcome.edges_skipped))
            .set(
                "mean_frontier_density",
                Json::float(self.outcome.mean_frontier_density),
            )
            .set(
                "retry_attempts",
                Json::num(self.outcome.retry_attempts as u64),
            )
            .set(
                "phases",
                Json::Arr(
                    self.outcome
                        .phases
                        .iter()
                        .map(|p| {
                            Json::Arr(vec![
                                Json::num(p.dispatch_us),
                                Json::num(p.fold_us),
                                Json::num(p.commit_us),
                                Json::num(p.slab_wait_us),
                            ])
                        })
                        .collect(),
                ),
            )
            .set(
                "queue_wait_us",
                Json::num(self.queue_wait.as_micros() as u64),
            )
            .set("run_us", Json::num(self.run_time.as_micros() as u64))
            .set("stats", self.stats.to_json())
    }

    /// Parse a success frame (the client-side inverse of
    /// [`JobResponse::to_json`]).
    pub fn from_json(j: &Json) -> Result<JobResponse, ServeError> {
        let bad = |m: &str| ServeError::BadRequest(format!("malformed response: {m}"));
        let value_type = j
            .get("value_type")
            .and_then(Json::as_str)
            .and_then(ValueType::parse)
            .ok_or_else(|| bad("value_type"))?;
        let values = j
            .get("values_u32")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("values_u32"))?
            .iter()
            .map(|v| v.as_u32().ok_or_else(|| bad("values_u32 element")))
            .collect::<Result<Vec<u32>, ServeError>>()?;
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let phases = j
            .get("phases")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        let row = row.as_arr()?;
                        let n = |i: usize| row.get(i).and_then(Json::as_u64);
                        Some(gpsa::PhaseBreakdown {
                            dispatch_us: n(0)?,
                            fold_us: n(1)?,
                            commit_us: n(2)?,
                            slab_wait_us: n(3)?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(JobResponse {
            job_id: u("job_id"),
            cache_hit: j.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
            outcome: Arc::new(JobOutcome {
                value_type,
                values_u32: Arc::new(values),
                supersteps: u("supersteps"),
                messages: u("messages"),
                edges_streamed: u("edges_streamed"),
                edges_skipped: u("edges_skipped"),
                mean_frontier_density: j
                    .get("mean_frontier_density")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                retry_attempts: u("retry_attempts") as u32,
                phases,
            }),
            queue_wait: Duration::from_micros(u("queue_wait_us")),
            run_time: Duration::from_micros(u("run_us")),
            stats: j
                .get("stats")
                .map(ServerStats::from_json)
                .unwrap_or_default(),
        })
    }
}

/// What comes back on a ticket's reply channel: the job result plus a
/// stats snapshot taken at reply time. Carrying the snapshot outside the
/// `Result` means **error** frames also ship the server counters, as the
/// protocol promises.
pub type SubmitReply = (Result<JobResponse, ServeError>, ServerStats);

/// A job in flight inside the server: the spec plus its reply channel and
/// the [`Timer`] that slices queue wait from run time.
#[derive(Debug)]
pub struct JobTicket {
    /// Server-assigned id.
    pub job_id: u64,
    /// The validated submission.
    pub spec: JobSpec,
    /// When the scheduler accepted the job.
    pub submitted: Instant,
    /// Phase timer started at acceptance; the runner laps it at run start
    /// ("queue_wait") and completion ("run").
    pub timer: Timer,
    /// Where the final [`JobResponse`] (or error) goes; the connection
    /// thread blocks on the other end.
    pub reply: Sender<SubmitReply>,
    /// Set by the connection thread when the submitter goes away; the
    /// scheduler reaps cancelled tickets instead of running them.
    pub cancel: CancelToken,
    /// Scratch bytes this job charges against its tenant's budget while
    /// queued or running (estimated as the graph's value-array size at
    /// admission).
    pub scratch_bytes: u64,
}

impl JobTicket {
    /// Time remaining before this job's deadline, if it has one.
    /// `Some(ZERO)` means already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.spec
            .deadline
            .map(|d| d.saturating_sub(self.submitted.elapsed()))
    }
}

/// Run one job against a pre-opened shared graph, writing scratch state
/// to `value_file`. This is the only place the serve layer touches the
/// engine; the `engine`'s config must already carry the job's
/// termination, scratch dir and watchdog settings.
pub fn run_job(
    engine: &Engine,
    graph: &Arc<GraphSnapshot>,
    value_file: &Path,
    alg: &AlgorithmSpec,
) -> Result<JobOutcome, EngineError> {
    match *alg {
        AlgorithmSpec::PageRank { damping, .. } => {
            let r = engine.run_snapshot(graph, value_file, PageRank { damping })?;
            Ok(JobOutcome {
                value_type: ValueType::F32,
                values_u32: Arc::new(r.values.iter().map(|v| v.to_bits()).collect()),
                supersteps: r.supersteps,
                messages: r.messages,
                edges_streamed: r.edges_streamed,
                edges_skipped: r.edges_skipped,
                mean_frontier_density: r.mean_frontier_density(),
                retry_attempts: r.retry_attempts,
                phases: r.phases,
            })
        }
        AlgorithmSpec::Bfs { root } => {
            let r = engine.run_snapshot(graph, value_file, Bfs { root })?;
            Ok(u32_outcome(r))
        }
        AlgorithmSpec::Cc => {
            let r = engine.run_snapshot(graph, value_file, ConnectedComponents)?;
            Ok(u32_outcome(r))
        }
        AlgorithmSpec::Sssp { root } => {
            let r = engine.run_snapshot(graph, value_file, Sssp { root })?;
            Ok(u32_outcome(r))
        }
    }
}

fn u32_outcome(r: gpsa::RunReport<u32>) -> JobOutcome {
    let mean_frontier_density = r.mean_frontier_density();
    JobOutcome {
        value_type: ValueType::U32,
        values_u32: Arc::new(r.values),
        supersteps: r.supersteps,
        messages: r.messages,
        edges_streamed: r.edges_streamed,
        edges_skipped: r.edges_skipped,
        mean_frontier_density,
        retry_attempts: r.retry_attempts,
        phases: r.phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_parse_defaults_and_errors() {
        let pr = AlgorithmSpec::parse("pagerank", &Json::obj()).unwrap();
        assert_eq!(
            pr,
            AlgorithmSpec::PageRank {
                damping: 0.85,
                supersteps: 5
            }
        );
        assert_eq!(pr.termination(), Termination::Supersteps(5));
        assert_eq!(pr.value_type(), ValueType::F32);

        let bfs = AlgorithmSpec::parse("bfs", &Json::obj().set("root", Json::num(3))).unwrap();
        assert_eq!(bfs, AlgorithmSpec::Bfs { root: 3 });
        assert!(AlgorithmSpec::parse("pagerankz", &Json::obj()).is_err());
        assert!(
            AlgorithmSpec::parse("pagerank", &Json::obj().set("damping", Json::float(1.5)))
                .is_err()
        );
    }

    #[test]
    fn canonical_params_are_bit_stable() {
        let a = AlgorithmSpec::parse("pagerank", &Json::obj().set("damping", Json::float(0.85)))
            .unwrap();
        let b = AlgorithmSpec::PageRank {
            damping: 0.85,
            supersteps: 5,
        };
        assert_eq!(a.canonical_params(), b.canonical_params());
        assert_eq!(AlgorithmSpec::Cc.canonical_params(), "");
    }

    #[test]
    fn params_json_reparses_to_the_same_spec() {
        let specs = [
            AlgorithmSpec::PageRank {
                damping: 0.9,
                supersteps: 3,
            },
            AlgorithmSpec::Bfs { root: 7 },
            AlgorithmSpec::Cc,
            AlgorithmSpec::Sssp { root: 2 },
        ];
        for s in specs {
            let back = AlgorithmSpec::parse(s.name(), &s.params_json()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn response_json_roundtrips_bit_exact() {
        let resp = JobResponse {
            job_id: 42,
            cache_hit: true,
            outcome: Arc::new(JobOutcome {
                value_type: ValueType::F32,
                values_u32: Arc::new(vec![0.1f32.to_bits(), f32::NAN.to_bits(), u32::MAX]),
                supersteps: 5,
                messages: 17,
                edges_streamed: 120,
                edges_skipped: 36,
                mean_frontier_density: 0.25,
                retry_attempts: 1,
                phases: vec![
                    gpsa::PhaseBreakdown {
                        dispatch_us: 100,
                        fold_us: 40,
                        commit_us: 7,
                        slab_wait_us: 3,
                    },
                    gpsa::PhaseBreakdown {
                        dispatch_us: 80,
                        fold_us: 35,
                        commit_us: 6,
                        slab_wait_us: 0,
                    },
                ],
            }),
            queue_wait: Duration::from_micros(250),
            run_time: Duration::from_micros(1300),
            stats: ServerStats {
                jobs_completed: 1,
                ..ServerStats::default()
            },
        };
        let back = JobResponse::from_json(&resp.to_json()).unwrap();
        assert_eq!(back.job_id, 42);
        assert!(back.cache_hit);
        assert_eq!(back.outcome.values_u32, resp.outcome.values_u32);
        assert_eq!(back.outcome.value_type, ValueType::F32);
        assert_eq!(back.queue_wait, resp.queue_wait);
        assert_eq!(back.run_time, resp.run_time);
        assert_eq!(back.stats.jobs_completed, 1);
        assert_eq!(back.outcome.phases, resp.outcome.phases);
        let decoded = back.outcome.values_f32().unwrap();
        assert_eq!(decoded[0].to_bits(), 0.1f32.to_bits());
        assert!(decoded[1].is_nan());
    }
}
