//! The durable job journal: an append-only, fsync'd write-ahead log of
//! job state transitions, plus the recovery scan that replays it.
//!
//! The engine's double-buffered value file (DESIGN.md §3.3) makes a
//! single *run* crash-safe; the journal extends the same discipline to
//! the *server*: every admitted job appends a `submitted` record before
//! any superstep runs, `started` when a runner picks it up, and
//! `committed` (or `failed`) when it resolves — each record fsync'd
//! before the state change is acted on. A restarted server replays the
//! log: jobs with a `submitted`/`started` record but no terminal record
//! are re-enqueued and run again (job results are deterministic, so a
//! replay is bit-identical to the lost run), and `committed` records
//! rebuild the idempotency-key map so a client that never heard an
//! answer can resubmit the same key and get the cached result.
//!
//! ## On-disk format
//!
//! One record per line in the CRC32 framing shared with the live-graph
//! delta log ([`gpsa_graph::framed`]): 8 lowercase hex digits of CRC32
//! over the JSON text, one space, the JSON, `\n`. A crash can tear at
//! most the final record (appends are sequential); recovery scans
//! forward and truncates the file at the first line that is incomplete,
//! fails its CRC, or does not parse — the torn-tail handling the chaos
//! suite exercises directly.
//!
//! ```text
//! 3f1d9a02 {"state":"submitted","job_id":7,"graph_id":"web",...}
//! 9c04e11b {"state":"started","job_id":7}
//! 5ab77310 {"state":"committed","job_id":7,"epoch":1}
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use gpsa_graph::framed;

use crate::job::{AlgorithmSpec, Priority};
use crate::json::Json;

#[cfg(feature = "chaos")]
use crate::fault::{JournalFault, ServeFaultPlan};
#[cfg(feature = "chaos")]
use std::sync::Arc;

/// The journal's job-lifecycle states, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalState {
    /// Admitted: the server has taken responsibility for running the job.
    Submitted,
    /// A runner began executing supersteps.
    Started,
    /// The job completed and its result entered the cache.
    Committed,
    /// The job resolved with an error; it must not replay.
    Failed,
    /// A graph mutation batch (add/remove edges) committed to its
    /// delta log; restores the graph's delta-seq watermark on replay.
    Mutated,
}

impl JournalState {
    /// Number of states (sizes the chaos plan's per-state counters).
    pub const COUNT: usize = 5;

    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JournalState::Submitted => "submitted",
            JournalState::Started => "started",
            JournalState::Committed => "committed",
            JournalState::Failed => "failed",
            JournalState::Mutated => "mutated",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JournalState> {
        match s {
            "submitted" => Some(JournalState::Submitted),
            "started" => Some(JournalState::Started),
            "committed" => Some(JournalState::Committed),
            "failed" => Some(JournalState::Failed),
            "mutated" => Some(JournalState::Mutated),
            _ => None,
        }
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The job was admitted; everything needed to re-run it rides along.
    Submitted {
        /// Server-assigned job id (unique across restarts).
        job_id: u64,
        /// Client-supplied idempotency key, if any.
        key: Option<String>,
        /// Which resident graph the job targets.
        graph_id: String,
        /// What to run.
        algorithm: AlgorithmSpec,
        /// Queue class for the replay.
        priority: Priority,
        /// Which tenant the job bills against (pre-tenancy journals read
        /// back as [`crate::job::DEFAULT_TENANT`]).
        tenant: String,
        /// Wall-clock submission time, milliseconds since the Unix epoch.
        /// Boot-time replay compares it against the configured
        /// idempotency-key TTL; 0 (pre-TTL journals) never expires.
        at_ms: u64,
    },
    /// A runner began executing the job.
    Started {
        /// The job.
        job_id: u64,
    },
    /// The job completed; its result is in the cache under this epoch.
    Committed {
        /// The job.
        job_id: u64,
        /// Registry epoch of the graph the result was computed against —
        /// together with the `Submitted` record this reconstructs the
        /// exact cache key.
        epoch: u64,
        /// Delta sequence within the epoch the result was computed
        /// against (0 for a pristine graph).
        delta_seq: u64,
    },
    /// The job resolved with an error and must not replay.
    Failed {
        /// The job.
        job_id: u64,
        /// Why, when the failure is worth distinguishing on replay
        /// (`"cancelled"` for reaped jobs; `None` for ordinary errors).
        reason: Option<String>,
    },
    /// A mutation batch committed to a graph's delta log; recovery uses
    /// it to cross-check the replayed delta-seq watermark.
    Mutated {
        /// The mutated graph.
        graph_id: String,
        /// Epoch the mutation landed in.
        epoch: u64,
        /// Delta sequence after the batch was applied.
        delta_seq: u64,
    },
}

impl JournalRecord {
    /// Which lifecycle state this record advances its job to.
    pub fn state(&self) -> JournalState {
        match self {
            JournalRecord::Submitted { .. } => JournalState::Submitted,
            JournalRecord::Started { .. } => JournalState::Started,
            JournalRecord::Committed { .. } => JournalState::Committed,
            JournalRecord::Failed { .. } => JournalState::Failed,
            JournalRecord::Mutated { .. } => JournalState::Mutated,
        }
    }

    /// The job this record belongs to (0 for graph-mutation records,
    /// which are not tied to any job).
    pub fn job_id(&self) -> u64 {
        match *self {
            JournalRecord::Submitted { job_id, .. }
            | JournalRecord::Started { job_id }
            | JournalRecord::Committed { job_id, .. }
            | JournalRecord::Failed { job_id, .. } => job_id,
            JournalRecord::Mutated { .. } => 0,
        }
    }

    fn to_json(&self) -> Json {
        let base = Json::obj().set("state", Json::str(self.state().as_str()));
        match self {
            JournalRecord::Submitted {
                job_id,
                key,
                graph_id,
                algorithm,
                priority,
                tenant,
                at_ms,
            } => {
                let mut j = base
                    .set("job_id", Json::num(*job_id))
                    .set("graph_id", Json::str(graph_id))
                    .set("algorithm", Json::str(algorithm.name()))
                    .set("params", algorithm.params_json())
                    .set("priority", Json::str(priority.as_str()))
                    .set("tenant", Json::str(tenant))
                    .set("at_ms", Json::num(*at_ms));
                if let Some(k) = key {
                    j = j.set("key", Json::str(k));
                }
                j
            }
            JournalRecord::Started { job_id } => base.set("job_id", Json::num(*job_id)),
            JournalRecord::Failed { job_id, reason } => {
                let j = base.set("job_id", Json::num(*job_id));
                match reason {
                    Some(r) => j.set("reason", Json::str(r)),
                    None => j,
                }
            }
            JournalRecord::Committed {
                job_id,
                epoch,
                delta_seq,
            } => base
                .set("job_id", Json::num(*job_id))
                .set("epoch", Json::num(*epoch))
                .set("delta_seq", Json::num(*delta_seq)),
            JournalRecord::Mutated {
                graph_id,
                epoch,
                delta_seq,
            } => base
                .set("graph_id", Json::str(graph_id))
                .set("epoch", Json::num(*epoch))
                .set("delta_seq", Json::num(*delta_seq)),
        }
    }

    fn from_json(j: &Json) -> Option<JournalRecord> {
        let state = JournalState::parse(j.get("state")?.as_str()?)?;
        if state == JournalState::Mutated {
            return Some(JournalRecord::Mutated {
                graph_id: j.get("graph_id")?.as_str()?.to_string(),
                epoch: j.get("epoch")?.as_u64()?,
                delta_seq: j.get("delta_seq")?.as_u64()?,
            });
        }
        let job_id = j.get("job_id")?.as_u64()?;
        Some(match state {
            JournalState::Submitted => {
                let empty = Json::obj();
                let algorithm = AlgorithmSpec::parse(
                    j.get("algorithm")?.as_str()?,
                    j.get("params").unwrap_or(&empty),
                )
                .ok()?;
                JournalRecord::Submitted {
                    job_id,
                    key: j.get("key").and_then(Json::as_str).map(str::to_string),
                    graph_id: j.get("graph_id")?.as_str()?.to_string(),
                    algorithm,
                    priority: Priority::parse(
                        j.get("priority").and_then(Json::as_str).unwrap_or("normal"),
                    ),
                    tenant: j
                        .get("tenant")
                        .and_then(Json::as_str)
                        .unwrap_or(crate::job::DEFAULT_TENANT)
                        .to_string(),
                    at_ms: j.get("at_ms").and_then(Json::as_u64).unwrap_or(0),
                }
            }
            JournalState::Started => JournalRecord::Started { job_id },
            JournalState::Committed => JournalRecord::Committed {
                job_id,
                epoch: j.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                delta_seq: j.get("delta_seq").and_then(Json::as_u64).unwrap_or(0),
            },
            JournalState::Failed => JournalRecord::Failed {
                job_id,
                reason: j.get("reason").and_then(Json::as_str).map(str::to_string),
            },
            JournalState::Mutated => unreachable!("handled above"),
        })
    }
}

/// CRC32 (IEEE, reflected) over bytes — re-exported from the shared
/// framed-log helper so existing callers keep their import path.
pub use gpsa_graph::framed::crc32;

fn encode_line(rec: &JournalRecord) -> String {
    framed::encode_line(&rec.to_json().encode())
}

/// Parse one record body (the framing — CRC check and unframing — is
/// [`framed::open_scan`]'s job). `None` means the record is corrupt.
fn decode_body(body: &str) -> Option<JournalRecord> {
    JournalRecord::from_json(&Json::parse(body).ok()?)
}

/// The append-only journal file.
pub struct JobJournal {
    file: File,
    path: PathBuf,
    #[cfg(feature = "chaos")]
    plan: Option<Arc<ServeFaultPlan>>,
}

impl std::fmt::Debug for JobJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobJournal")
            .field("path", &self.path)
            .finish()
    }
}

impl JobJournal {
    /// Open (or create) the journal at `path`, replaying every intact
    /// record. A torn or corrupt tail is truncated away — the records
    /// before it are returned, the garbage after it is gone, and the
    /// journal is ready to append.
    pub fn open(path: &Path) -> io::Result<(JobJournal, Vec<JournalRecord>)> {
        let (file, records) = framed::open_scan(path, decode_body)?;
        Ok((
            JobJournal {
                file,
                path: path.to_path_buf(),
                #[cfg(feature = "chaos")]
                plan: None,
            },
            records,
        ))
    }

    /// Install a chaos fault plan consulted on every append.
    #[cfg(feature = "chaos")]
    pub fn set_fault_plan(&mut self, plan: Arc<ServeFaultPlan>) {
        self.plan = Some(plan);
    }

    /// Append one record and fsync it. Returns only after the record is
    /// durable — callers act on the state change strictly after this.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let line = encode_line(rec);
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.plan {
            match plan.on_journal_append(rec.state()) {
                JournalFault::None => {}
                JournalFault::Torn => {
                    // A crash mid-append: half the bytes reach the file,
                    // no fsync, and (in the tests that script this) the
                    // process goes down before appending again.
                    let torn = &line.as_bytes()[..line.len() / 2];
                    self.file.write_all(torn)?;
                    self.file.flush()?;
                    return Ok(());
                }
                JournalFault::Crash => {
                    eprintln!(
                        "chaos: aborting at journal append {} (job {})",
                        rec.state().as_str(),
                        rec.job_id()
                    );
                    std::process::abort();
                }
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Rewrite the journal to contain exactly `keep`, atomically
    /// (tmp + fsync + rename). Run at boot after recovery: terminal
    /// records for jobs nobody can ask about again are dropped, so the
    /// log stays proportional to incomplete work plus keyed history
    /// instead of growing forever.
    pub fn compact(&mut self, keep: &[JournalRecord]) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut f = File::create(&tmp)?;
        for rec in keep {
            f.write_all(encode_line(rec).as_bytes())?;
        }
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// Delete `job-*` scratch directories a crashed server left under
/// `<work_dir>/jobs/`, returning the number of bytes reclaimed. A live
/// server deletes each job's scratch as the job finishes, so anything
/// found here is an orphan of a previous process.
pub fn sweep_scratch_dirs(work_dir: &Path) -> u64 {
    let jobs = work_dir.join("jobs");
    let Ok(entries) = std::fs::read_dir(&jobs) else {
        return 0;
    };
    let mut reclaimed = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("job-") {
            continue;
        }
        reclaimed += dir_bytes(&entry.path());
        let _ = std::fs::remove_dir_all(entry.path());
    }
    reclaimed
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut total = 0u64;
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            total += dir_bytes(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gpsa-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn submitted(job_id: u64, key: Option<&str>) -> JournalRecord {
        JournalRecord::Submitted {
            job_id,
            key: key.map(str::to_string),
            graph_id: "g".to_string(),
            algorithm: AlgorithmSpec::PageRank {
                damping: 0.85,
                supersteps: 5,
            },
            priority: Priority::High,
            tenant: "default".to_string(),
            at_ms: 0,
        }
    }

    #[test]
    fn records_roundtrip_through_lines() {
        let recs = [
            submitted(1, Some("k-1")),
            submitted(2, None),
            JournalRecord::Started { job_id: 1 },
            JournalRecord::Committed {
                job_id: 1,
                epoch: 3,
                delta_seq: 2,
            },
            JournalRecord::Failed {
                job_id: 2,
                reason: Some("deadline exceeded".to_string()),
            },
        ];
        for rec in &recs {
            let line = encode_line(rec);
            let body = framed::decode_line(line.trim_end_matches('\n')).unwrap();
            let back = decode_body(body).unwrap();
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn append_and_reopen_replays_everything() {
        let dir = tmp("replay");
        let path = dir.join("journal.wal");
        let (mut j, recs) = JobJournal::open(&path).unwrap();
        assert!(recs.is_empty());
        j.append(&submitted(1, Some("k"))).unwrap();
        j.append(&JournalRecord::Started { job_id: 1 }).unwrap();
        j.append(&JournalRecord::Committed {
            job_id: 1,
            epoch: 1,
            delta_seq: 0,
        })
        .unwrap();
        drop(j);
        let (_, recs) = JobJournal::open(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], submitted(1, Some("k")));
        assert_eq!(recs[2].state(), JournalState::Committed);
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let dir = tmp("torn");
        let path = dir.join("journal.wal");
        let (mut j, _) = JobJournal::open(&path).unwrap();
        j.append(&submitted(1, None)).unwrap();
        j.append(&JournalRecord::Started { job_id: 1 }).unwrap();
        drop(j);
        // Tear the tail: append half of a third record, no newline.
        let line = encode_line(&JournalRecord::Committed {
            job_id: 1,
            epoch: 1,
            delta_seq: 0,
        });
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&line.as_bytes()[..line.len() / 2]).unwrap();
        drop(f);
        // Recovery: the two whole records survive, the torn tail is gone.
        let (mut j, recs) = JobJournal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        // The file is usable again: a fresh append lands on a clean tail.
        j.append(&JournalRecord::Committed {
            job_id: 1,
            epoch: 1,
            delta_seq: 0,
        })
        .unwrap();
        drop(j);
        let (_, recs) = JobJournal::open(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[2],
            JournalRecord::Committed {
                job_id: 1,
                epoch: 1,
                delta_seq: 0
            }
        );
    }

    #[test]
    fn corrupt_crc_truncates_from_the_bad_record() {
        let dir = tmp("crc");
        let path = dir.join("journal.wal");
        let (mut j, _) = JobJournal::open(&path).unwrap();
        j.append(&submitted(1, None)).unwrap();
        j.append(&submitted(2, None)).unwrap();
        drop(j);
        // Flip a byte inside the second record's JSON.
        let mut raw = std::fs::read(&path).unwrap();
        let first_len = encode_line(&submitted(1, None)).len();
        raw[first_len + 12] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, recs) = JobJournal::open(&path).unwrap();
        assert_eq!(recs, vec![submitted(1, None)]);
        // Everything after the corrupt record was discarded on disk too.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            first_len as u64,
            "truncation must be physical, not just logical"
        );
    }

    #[test]
    fn compact_rewrites_atomically() {
        let dir = tmp("compact");
        let path = dir.join("journal.wal");
        let (mut j, _) = JobJournal::open(&path).unwrap();
        for id in 1..=4 {
            j.append(&submitted(id, None)).unwrap();
            j.append(&JournalRecord::Committed {
                job_id: id,
                epoch: 1,
                delta_seq: 0,
            })
            .unwrap();
        }
        j.compact(&[submitted(9, Some("keep"))]).unwrap();
        // Appends keep working against the compacted file.
        j.append(&JournalRecord::Started { job_id: 9 }).unwrap();
        drop(j);
        let (_, recs) = JobJournal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], submitted(9, Some("keep")));
        assert_eq!(recs[1], JournalRecord::Started { job_id: 9 });
    }

    #[test]
    fn scratch_sweep_reclaims_orphans_only() {
        let dir = tmp("sweep");
        let jobs = dir.join("jobs");
        std::fs::create_dir_all(jobs.join("job-3")).unwrap();
        std::fs::create_dir_all(jobs.join("job-4/nested")).unwrap();
        std::fs::create_dir_all(jobs.join("unrelated")).unwrap();
        std::fs::write(jobs.join("job-3/values.gval"), vec![0u8; 100]).unwrap();
        std::fs::write(jobs.join("job-4/nested/x"), vec![0u8; 28]).unwrap();
        std::fs::write(jobs.join("unrelated/y"), vec![0u8; 9]).unwrap();
        assert_eq!(sweep_scratch_dirs(&dir), 128);
        assert!(!jobs.join("job-3").exists());
        assert!(!jobs.join("job-4").exists());
        assert!(jobs.join("unrelated/y").exists(), "non-job dirs survive");
        // Idempotent, and a missing jobs dir is fine.
        assert_eq!(sweep_scratch_dirs(&dir), 0);
        assert_eq!(sweep_scratch_dirs(&dir.join("absent")), 0);
    }
}
