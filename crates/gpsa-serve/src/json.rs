//! A minimal JSON document model with encoder and parser.
//!
//! The workspace deliberately carries no `serde_json` dependency; the wire
//! protocol needs exactly one document shape (objects of scalars, arrays of
//! integers, one level of nesting for counters), so this module implements
//! the subset of RFC 8259 the protocol uses — which happens to be all of
//! JSON's value grammar — in a few hundred lines.
//!
//! Numbers are carried as `f64`. Every integer the protocol ships (vertex
//! counts, value bits, microsecond timings) fits losslessly below 2^53;
//! [`Json::encode`] prints integral values without a decimal point so
//! `u32` value bits round-trip exactly.

use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (deterministic encoding).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for builder-style construction with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder-style field insert; replaces an existing key.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for magnitudes below 2^53).
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A floating-point value.
    pub fn float(n: f64) -> Json {
        Json::Num(n)
    }

    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `u32`, if it fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Largest f64 whose integral values are all exactly representable
/// (`2^53 - 1`); integers at or below this round-trip through `Json::Num`
/// bit-for-bit.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_991.0;

fn encode_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the protocol never produces them, but a
        // defensive null beats emitting an unparseable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's f64 Display prints the shortest string that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting bound: the protocol uses two levels; 64 guards the recursive
/// parser against stack exhaustion from hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {b:#04x} at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8; copy whole code points).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control byte at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let n = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text, "{text}");
        }
    }

    #[test]
    fn integers_are_exact() {
        let bits: Vec<u64> = vec![0, 1, u32::MAX as u64, (1u64 << 53) - 1];
        let arr = Json::Arr(bits.iter().map(|&b| Json::num(b)).collect());
        let back = Json::parse(&arr.encode()).unwrap();
        let got: Vec<u64> = back
            .as_arr()
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn objects_preserve_order_and_get() {
        let v = Json::obj()
            .set("b", Json::num(2))
            .set("a", Json::str("x"))
            .set("b", Json::num(3));
        assert_eq!(v.encode(), "{\"b\":3,\"a\":\"x\"}");
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(3));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1F600} \u{7}";
        let encoded = Json::Str(s.to_string()).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A\u{1F600}")
        );
    }

    #[test]
    fn nested_document_roundtrips() {
        let text = r#"{"ok":true,"jobs":[{"id":1,"t":0.25},{"id":2,"t":-3}],"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(
            v.get("jobs").unwrap().as_arr().unwrap()[1]
                .get("t")
                .unwrap()
                .as_f64(),
            Some(-3.0)
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01x",
            "[1]]",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
