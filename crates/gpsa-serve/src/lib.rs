//! gpsa-serve: a resident-graph job server over the GPSA engine.
//!
//! The batch CLI pays the dominant cost of graph analytics — opening and
//! mapping the CSR — on every single run. This crate amortizes it: a
//! long-running server keeps graphs resident in a [`registry`], schedules
//! jobs against them through an actor-based [`scheduler`] with bounded
//! admission control, answers repeated queries from a [`cache`] without
//! running a superstep, and speaks a length-prefixed JSON [`wire`]
//! protocol over TCP.
//!
//! Layering, bottom to top:
//!
//! - [`json`] / [`wire`]: the protocol encoding (hand-rolled, like the
//!   rest of the workspace — no serde).
//! - [`error`] / [`stats`] / [`job`]: the shared vocabulary — typed
//!   errors with stable wire codes, counter snapshots, job specs and
//!   responses.
//! - [`registry`] / [`cache`]: resident state — shared read-only
//!   [`gpsa_graph::DiskCsr`] mmaps with epochs, and LRU'd results keyed
//!   by `(graph, algorithm, params, epoch)`. Both persist: the registry
//!   writes a manifest, the cache spills entries to disk, and a restarted
//!   server restores both.
//! - [`journal`]: the append-only, fsync'd job WAL that makes the server
//!   itself crash-safe — incomplete jobs replay on restart, and
//!   idempotency keys answer resubmissions without rerunning.
//! - [`scheduler`]: the policy actor plus its runner fleet, on the same
//!   [`actor`] runtime the engine uses.
//! - [`server`] / [`client`]: the TCP endpoints.
//!
//! # Quickstart
//!
//! ```no_run
//! use gpsa_serve::{start, AlgorithmSpec, Client, ServeConfig, SubmitRequest};
//!
//! let handle = start(ServeConfig::new("/tmp/gpsa-serve")).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.register_graph("web", "/data/web.gcsr").unwrap();
//! let resp = client
//!     .submit(&SubmitRequest::new(
//!         "web",
//!         AlgorithmSpec::PageRank { damping: 0.85, supersteps: 5 },
//!     ))
//!     .unwrap();
//! assert!(!resp.cache_hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub mod error;
#[cfg(feature = "chaos")]
pub mod fault;
pub mod job;
pub mod journal;
pub mod json;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod wire;

pub use cache::{CacheKey, ResultCache};
pub use client::{Client, ClientError, RetryPolicy, SubmitRequest};
pub use config::ServeConfig;
pub use error::ServeError;
#[cfg(feature = "chaos")]
pub use fault::{CompactPoint, DeltaFault, OverloadWave, ServeFault, ServeFaultPlan};
pub use job::{AlgorithmSpec, JobOutcome, JobResponse, JobSpec, Priority, ValueType};
pub use journal::{JobJournal, JournalRecord, JournalState};
pub use registry::{GraphInfo, GraphRegistry};
pub use server::{start, ServerHandle};
pub use stats::{ServerStats, TenantStats};
