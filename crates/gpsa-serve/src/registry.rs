//! The resident-graph registry: one mmap per graph, shared read-only by
//! every job that names it.
//!
//! The Ammar & Özsu survey's observation motivating this whole subsystem is
//! that end-to-end time is dominated by per-job graph loading; the registry
//! amortizes that cost by opening each [`DiskCsr`] once and handing out
//! `Arc` clones. Re-registering an id **bumps its epoch** — the epoch is
//! part of every result-cache key, so stale cached results can never be
//! served for a replaced graph.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpsa_graph::DiskCsr;

use crate::error::ServeError;

/// One resident graph.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// The shared read-only mmap.
    pub graph: Arc<DiskCsr>,
    /// Where it was opened from.
    pub path: PathBuf,
    /// Bumped on every (re-)register of this id; starts at 1.
    pub epoch: u64,
}

/// A row of [`GraphRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registered id.
    pub graph_id: String,
    /// Current epoch.
    pub epoch: u64,
    /// Vertex count.
    pub n_vertices: usize,
    /// Edge count.
    pub n_edges: usize,
    /// Mapped bytes (CSR body).
    pub bytes: u64,
}

/// Resident graphs by id, with a resident-byte budget.
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: HashMap<String, GraphEntry>,
    budget_bytes: u64,
}

impl GraphRegistry {
    /// An empty registry with the given resident-byte budget
    /// (`u64::MAX` = unlimited).
    pub fn new(budget_bytes: u64) -> Self {
        GraphRegistry {
            graphs: HashMap::new(),
            budget_bytes,
        }
    }

    /// Open the CSR at `path` and make it resident under `id`. Replacing
    /// an existing id bumps its epoch (callers must then purge cache
    /// entries for the id). Fails with [`ServeError::ServerBusy`] when the
    /// graph would push resident bytes over the budget, and
    /// [`ServeError::BadRequest`] when the file cannot be opened.
    pub fn register(&mut self, id: &str, path: &Path) -> Result<GraphEntry, ServeError> {
        if id.is_empty() {
            return Err(ServeError::BadRequest("empty graph_id".to_string()));
        }
        let graph = DiskCsr::open(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot open {}: {e}", path.display())))?;
        let incoming = graph.file_bytes() as u64;
        let displaced = self
            .graphs
            .get(id)
            .map(|e| e.graph.file_bytes() as u64)
            .unwrap_or(0);
        let resident_after = self.resident_bytes() - displaced + incoming;
        if resident_after > self.budget_bytes {
            return Err(ServeError::ServerBusy(format!(
                "registering {id:?} ({incoming} bytes) would put {resident_after} resident \
                 bytes over the {}-byte budget",
                self.budget_bytes
            )));
        }
        let epoch = self.graphs.get(id).map(|e| e.epoch + 1).unwrap_or(1);
        let entry = GraphEntry {
            graph: Arc::new(graph),
            path: path.to_path_buf(),
            epoch,
        };
        self.graphs.insert(id.to_string(), entry.clone());
        Ok(entry)
    }

    /// The resident graph and its epoch, if `id` is registered.
    pub fn get(&self, id: &str) -> Option<(Arc<DiskCsr>, u64)> {
        self.graphs.get(id).map(|e| (e.graph.clone(), e.epoch))
    }

    /// Total mapped bytes across resident graphs.
    pub fn resident_bytes(&self) -> u64 {
        self.graphs
            .values()
            .map(|e| e.graph.file_bytes() as u64)
            .sum()
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Snapshot of every resident graph, sorted by id.
    pub fn list(&self) -> Vec<GraphInfo> {
        let mut rows: Vec<GraphInfo> = self
            .graphs
            .iter()
            .map(|(id, e)| GraphInfo {
                graph_id: id.clone(),
                epoch: e.epoch,
                n_vertices: e.graph.n_vertices(),
                n_edges: e.graph.n_edges(),
                bytes: e.graph.file_bytes() as u64,
            })
            .collect();
        rows.sort_by(|a, b| a.graph_id.cmp(&b.graph_id));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::{generate, preprocess};

    fn materialize(tag: &str, el: gpsa_graph::EdgeList) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-serve-reg-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.gcsr"));
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
        path
    }

    #[test]
    fn register_get_and_epoch_bump() {
        let path = materialize("cycle", generate::cycle(32));
        let mut reg = GraphRegistry::new(u64::MAX);
        let first = reg.register("g", &path).unwrap();
        assert_eq!(first.epoch, 1);
        let (graph, epoch) = reg.get("g").unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(graph.n_vertices(), 32);
        // Same id again: same bytes, bumped epoch.
        let second = reg.register("g", &path).unwrap();
        assert_eq!(second.epoch, 2);
        assert_eq!(reg.get("g").unwrap().1, 2);
        assert_eq!(reg.len(), 1);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn budget_refuses_but_leaves_registry_intact() {
        let small = materialize("small", generate::chain(16));
        let big = materialize("big", generate::cycle(4096));
        let mut reg = GraphRegistry::new(0);
        // Learn the small graph's real size, then budget exactly for it.
        let bytes = DiskCsr::open(&small).unwrap().file_bytes() as u64;
        let mut reg2 = GraphRegistry::new(bytes);
        assert!(matches!(
            reg.register("s", &small),
            Err(ServeError::ServerBusy(_))
        ));
        reg2.register("s", &small).unwrap();
        let err = reg2.register("b", &big).unwrap_err();
        assert!(matches!(err, ServeError::ServerBusy(_)), "{err:?}");
        // The refused register didn't disturb the resident entry.
        assert_eq!(reg2.len(), 1);
        assert!(reg2.get("s").is_some());
        // Replacing the resident graph with itself stays within budget.
        assert_eq!(reg2.register("s", &small).unwrap().epoch, 2);
    }

    #[test]
    fn unknown_path_is_bad_request() {
        let mut reg = GraphRegistry::new(u64::MAX);
        let err = reg
            .register("g", Path::new("/nonexistent/nope.gcsr"))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(reg.is_empty());
    }

    #[test]
    fn list_is_sorted_and_complete() {
        let a = materialize("la", generate::chain(8));
        let b = materialize("lb", generate::star(8));
        let mut reg = GraphRegistry::new(u64::MAX);
        reg.register("zz", &a).unwrap();
        reg.register("aa", &b).unwrap();
        let rows = reg.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].graph_id, "aa");
        assert_eq!(rows[1].graph_id, "zz");
        assert_eq!(reg.resident_bytes(), rows[0].bytes + rows[1].bytes);
    }
}
