//! The resident-graph registry: one mmap per graph, shared read-only by
//! every job that names it.
//!
//! The Ammar & Özsu survey's observation motivating this whole subsystem is
//! that end-to-end time is dominated by per-job graph loading; the registry
//! amortizes that cost by opening each [`DiskCsr`] once and handing out
//! `Arc` clones. Re-registering an id **bumps its epoch** — the epoch is
//! part of every result-cache key, so stale cached results can never be
//! served for a replaced graph.
//!
//! With a manifest path attached, the registry is also **durable**: every
//! successful register rewrites a small JSON manifest (atomically —
//! tmp + fsync + rename) recording each graph's id, path, epoch, and the
//! file's size/mtime at registration. A restarted server re-opens every
//! manifest entry; if the underlying `.gcsr` changed while the server was
//! down, the entry's epoch is bumped on restore, so cached results from
//! the old bytes structurally stop matching.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::UNIX_EPOCH;

use gpsa_graph::DiskCsr;

use crate::error::ServeError;
use crate::json::Json;

/// One resident graph.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// The shared read-only mmap.
    pub graph: Arc<DiskCsr>,
    /// Where it was opened from.
    pub path: PathBuf,
    /// Bumped on every (re-)register of this id; starts at 1.
    pub epoch: u64,
}

/// A row of [`GraphRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registered id.
    pub graph_id: String,
    /// Current epoch.
    pub epoch: u64,
    /// Vertex count.
    pub n_vertices: usize,
    /// Edge count.
    pub n_edges: usize,
    /// Mapped bytes (CSR body).
    pub bytes: u64,
}

/// Resident graphs by id, with a resident-byte budget.
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: HashMap<String, GraphEntry>,
    budget_bytes: u64,
    manifest: Option<PathBuf>,
}

/// `(size, mtime_secs, mtime_nanos)` of a file — the change detector the
/// manifest stores per graph.
fn file_stamp(path: &Path) -> (u64, u64, u64) {
    let Ok(meta) = std::fs::metadata(path) else {
        return (0, 0, 0);
    };
    let (s, ns) = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| (d.as_secs(), d.subsec_nanos() as u64))
        .unwrap_or((0, 0));
    (meta.len(), s, ns)
}

impl GraphRegistry {
    /// An empty, memory-only registry with the given resident-byte budget
    /// (`u64::MAX` = unlimited).
    pub fn new(budget_bytes: u64) -> Self {
        GraphRegistry {
            graphs: HashMap::new(),
            budget_bytes,
            manifest: None,
        }
    }

    /// A durable registry backed by `manifest`, restoring every entry a
    /// previous server persisted there. Restore is best-effort and never
    /// fails the boot: entries whose file vanished or no longer opens are
    /// dropped (with a note on stderr), entries whose file changed since
    /// registration come back with a **bumped epoch**. Returns the
    /// registry and how many graphs were restored.
    pub fn open(budget_bytes: u64, manifest: PathBuf) -> (Self, usize) {
        let mut reg = GraphRegistry {
            graphs: HashMap::new(),
            budget_bytes,
            manifest: Some(manifest.clone()),
        };
        let rows = match std::fs::read_to_string(&manifest).ok().and_then(|text| {
            Json::parse(&text).ok().and_then(|j| {
                j.get("graphs")
                    .and_then(|g| g.as_arr().map(<[Json]>::to_vec))
            })
        }) {
            Some(rows) => rows,
            None => return (reg, 0),
        };
        let mut changed = false;
        for row in &rows {
            let Some((id, path)) = row
                .get("graph_id")
                .and_then(Json::as_str)
                .zip(row.get("path").and_then(Json::as_str))
            else {
                continue;
            };
            let path = PathBuf::from(path);
            let graph = match DiskCsr::open(&path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!(
                        "gpsa-serve: dropping graph {id:?} on restore: cannot open {}: {e}",
                        path.display()
                    );
                    changed = true;
                    continue;
                }
            };
            if reg.resident_bytes() + graph.file_bytes() as u64 > reg.budget_bytes {
                eprintln!("gpsa-serve: dropping graph {id:?} on restore: over memory budget");
                changed = true;
                continue;
            }
            let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
            let mut epoch = u("epoch").max(1);
            if file_stamp(&path) != (u("bytes"), u("mtime_s"), u("mtime_ns")) {
                // The file changed while the server was down: same id, new
                // bytes. Bump the epoch so old cached results can't match.
                epoch += 1;
                changed = true;
            }
            reg.graphs.insert(
                id.to_string(),
                GraphEntry {
                    graph: Arc::new(graph),
                    path,
                    epoch,
                },
            );
        }
        if changed {
            reg.persist();
        }
        let n = reg.graphs.len();
        (reg, n)
    }

    /// Rewrite the manifest to match resident state, atomically. A no-op
    /// for memory-only registries; failures are reported, not fatal (the
    /// server keeps serving, it just restores less after the next crash).
    fn persist(&self) {
        let Some(manifest) = &self.manifest else {
            return;
        };
        let mut rows: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        rows.sort_unstable();
        let graphs: Vec<Json> = rows
            .iter()
            .map(|id| {
                let e = &self.graphs[*id];
                let (bytes, mtime_s, mtime_ns) = file_stamp(&e.path);
                Json::obj()
                    .set("graph_id", Json::str(*id))
                    .set("path", Json::str(e.path.to_string_lossy()))
                    .set("epoch", Json::num(e.epoch))
                    .set("bytes", Json::num(bytes))
                    .set("mtime_s", Json::num(mtime_s))
                    .set("mtime_ns", Json::num(mtime_ns))
            })
            .collect();
        let body = Json::obj().set("graphs", Json::Arr(graphs)).encode();
        let write = || -> std::io::Result<()> {
            if let Some(parent) = manifest.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let tmp = manifest.with_extension("manifest.tmp");
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, manifest)
        };
        if let Err(e) = write() {
            eprintln!(
                "gpsa-serve: cannot persist registry manifest {}: {e}",
                manifest.display()
            );
        }
    }

    /// Open the CSR at `path` and make it resident under `id`. Replacing
    /// an existing id bumps its epoch (callers must then purge cache
    /// entries for the id). Fails with [`ServeError::ServerBusy`] when the
    /// graph would push resident bytes over the budget, and
    /// [`ServeError::BadRequest`] when the file cannot be opened.
    pub fn register(&mut self, id: &str, path: &Path) -> Result<GraphEntry, ServeError> {
        if id.is_empty() {
            return Err(ServeError::BadRequest("empty graph_id".to_string()));
        }
        let graph = DiskCsr::open(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot open {}: {e}", path.display())))?;
        let incoming = graph.file_bytes() as u64;
        let displaced = self
            .graphs
            .get(id)
            .map(|e| e.graph.file_bytes() as u64)
            .unwrap_or(0);
        let resident_after = self.resident_bytes() - displaced + incoming;
        if resident_after > self.budget_bytes {
            return Err(ServeError::ServerBusy(format!(
                "registering {id:?} ({incoming} bytes) would put {resident_after} resident \
                 bytes over the {}-byte budget",
                self.budget_bytes
            )));
        }
        let epoch = self.graphs.get(id).map(|e| e.epoch + 1).unwrap_or(1);
        let entry = GraphEntry {
            graph: Arc::new(graph),
            path: path.to_path_buf(),
            epoch,
        };
        self.graphs.insert(id.to_string(), entry.clone());
        self.persist();
        Ok(entry)
    }

    /// The resident graph and its epoch, if `id` is registered.
    pub fn get(&self, id: &str) -> Option<(Arc<DiskCsr>, u64)> {
        self.graphs.get(id).map(|e| (e.graph.clone(), e.epoch))
    }

    /// Total mapped bytes across resident graphs.
    pub fn resident_bytes(&self) -> u64 {
        self.graphs
            .values()
            .map(|e| e.graph.file_bytes() as u64)
            .sum()
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Current `graph_id → epoch` map (what the result cache validates
    /// restored entries against).
    pub fn epochs(&self) -> HashMap<String, u64> {
        self.graphs
            .iter()
            .map(|(id, e)| (id.clone(), e.epoch))
            .collect()
    }

    /// Snapshot of every resident graph, sorted by id.
    pub fn list(&self) -> Vec<GraphInfo> {
        let mut rows: Vec<GraphInfo> = self
            .graphs
            .iter()
            .map(|(id, e)| GraphInfo {
                graph_id: id.clone(),
                epoch: e.epoch,
                n_vertices: e.graph.n_vertices(),
                n_edges: e.graph.n_edges(),
                bytes: e.graph.file_bytes() as u64,
            })
            .collect();
        rows.sort_by(|a, b| a.graph_id.cmp(&b.graph_id));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::{generate, preprocess};

    fn materialize(tag: &str, el: gpsa_graph::EdgeList) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-serve-reg-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.gcsr"));
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
        path
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-serve-man-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn register_get_and_epoch_bump() {
        let path = materialize("cycle", generate::cycle(32));
        let mut reg = GraphRegistry::new(u64::MAX);
        let first = reg.register("g", &path).unwrap();
        assert_eq!(first.epoch, 1);
        let (graph, epoch) = reg.get("g").unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(graph.n_vertices(), 32);
        // Same id again: same bytes, bumped epoch.
        let second = reg.register("g", &path).unwrap();
        assert_eq!(second.epoch, 2);
        assert_eq!(reg.get("g").unwrap().1, 2);
        assert_eq!(reg.len(), 1);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn budget_refuses_but_leaves_registry_intact() {
        let small = materialize("small", generate::chain(16));
        let big = materialize("big", generate::cycle(4096));
        let mut reg = GraphRegistry::new(0);
        // Learn the small graph's real size, then budget exactly for it.
        let bytes = DiskCsr::open(&small).unwrap().file_bytes() as u64;
        let mut reg2 = GraphRegistry::new(bytes);
        assert!(matches!(
            reg.register("s", &small),
            Err(ServeError::ServerBusy(_))
        ));
        reg2.register("s", &small).unwrap();
        let err = reg2.register("b", &big).unwrap_err();
        assert!(matches!(err, ServeError::ServerBusy(_)), "{err:?}");
        // The refused register didn't disturb the resident entry.
        assert_eq!(reg2.len(), 1);
        assert!(reg2.get("s").is_some());
        // Replacing the resident graph with itself stays within budget.
        assert_eq!(reg2.register("s", &small).unwrap().epoch, 2);
    }

    #[test]
    fn unknown_path_is_bad_request() {
        let mut reg = GraphRegistry::new(u64::MAX);
        let err = reg
            .register("g", Path::new("/nonexistent/nope.gcsr"))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(reg.is_empty());
    }

    #[test]
    fn list_is_sorted_and_complete() {
        let a = materialize("la", generate::chain(8));
        let b = materialize("lb", generate::star(8));
        let mut reg = GraphRegistry::new(u64::MAX);
        reg.register("zz", &a).unwrap();
        reg.register("aa", &b).unwrap();
        let rows = reg.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].graph_id, "aa");
        assert_eq!(rows[1].graph_id, "zz");
        assert_eq!(reg.resident_bytes(), rows[0].bytes + rows[1].bytes);
    }

    #[test]
    fn manifest_restores_graphs_and_epochs() {
        let dir = test_dir("restore");
        let manifest = dir.join("registry.manifest");
        let a = materialize("ma", generate::cycle(16));
        let b = materialize("mb", generate::chain(8));
        {
            let (mut reg, restored) = GraphRegistry::open(u64::MAX, manifest.clone());
            assert_eq!(restored, 0);
            reg.register("a", &a).unwrap();
            reg.register("a", &a).unwrap(); // epoch 2
            reg.register("b", &b).unwrap();
        }
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 2);
        assert_eq!(reg.get("a").unwrap().1, 2, "epochs survive restart");
        assert_eq!(reg.get("b").unwrap().1, 1);
        assert_eq!(reg.get("a").unwrap().0.n_vertices(), 16);
        // Registering after restore keeps counting from the restored epoch.
        let mut reg = reg;
        assert_eq!(reg.register("a", &a).unwrap().epoch, 3);
    }

    #[test]
    fn changed_file_bumps_epoch_on_restore() {
        let dir = test_dir("changed");
        let manifest = dir.join("registry.manifest");
        let path = materialize("mc", generate::cycle(16));
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("g", &path).unwrap();
        }
        // Replace the graph file while the "server" is down.
        gpsa_graph::preprocess::edges_to_csr(
            generate::cycle(32),
            &path,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )
        .unwrap();
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest.clone());
        assert_eq!(restored, 1);
        let (graph, epoch) = reg.get("g").unwrap();
        assert_eq!(epoch, 2, "changed bytes must look like a re-register");
        assert_eq!(graph.n_vertices(), 32);
        // The bump was persisted: a second restart does not bump again.
        drop(reg);
        let (reg, _) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(reg.get("g").unwrap().1, 2);
    }

    #[test]
    fn missing_file_is_dropped_on_restore() {
        let dir = test_dir("missing");
        let manifest = dir.join("registry.manifest");
        let keep = materialize("mk", generate::chain(8));
        let doomed = dir.join("doomed.gcsr");
        gpsa_graph::preprocess::edges_to_csr(
            generate::chain(8),
            &doomed,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )
        .unwrap();
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("keep", &keep).unwrap();
            reg.register("doomed", &doomed).unwrap();
        }
        std::fs::remove_file(&doomed).unwrap();
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 1);
        assert!(reg.get("keep").is_some());
        assert!(reg.get("doomed").is_none());
    }
}
