//! The resident-graph registry: one live [`GraphSnapshot`] per graph id,
//! shared read-only by every job that names it.
//!
//! The Ammar & Özsu survey's observation motivating this subsystem is
//! that end-to-end time is dominated by per-job graph loading; the
//! registry amortizes that cost by opening each CSR once and handing out
//! `Arc` clones. On top of that residency the registry is the server's
//! **live-graph authority**:
//!
//! * [`GraphRegistry::mutate`] appends an edge-delta batch to the
//!   graph's fsync'd sibling log (`*.gcsr.gdelta`), then swaps in a new
//!   snapshot with the batch folded into its in-memory overlay. The
//!   graph's **delta seq** counts folded batches within the current
//!   epoch; it joins the epoch in every result-cache key, so results
//!   computed before a mutation structurally stop matching after it.
//! * [`GraphRegistry::begin_compact`] / [`finish_compact`]
//!   (background-able) fold base ⊕ delta into a fresh v2 CSR at
//!   `{base}.e{epoch+1}`; finishing bumps the **epoch**, resets the
//!   delta seq, and atomically rewrites the manifest — the commit point.
//!   In-flight jobs keep draining on the pinned old snapshot.
//! * Re-registering an id whose registered file is byte-identical
//!   (size + mtime stamp) is a **complete no-op** — same entry, same
//!   epoch, live overlay kept — so boot scripts that re-register on
//!   every start do not wipe caches or live state. Only actually-changed
//!   bytes reload the file, drop the delta log, and bump the epoch.
//!
//! With a manifest path attached, the registry is **durable**: every
//! epoch transition rewrites a small JSON manifest (atomically — tmp +
//! fsync + rename). A restarted server re-opens every entry *live*,
//! replaying its delta log (torn tails truncated), so mutations survive
//! restarts without re-preprocessing; if the underlying CSR bytes
//! changed while the server was down, the entry reloads fresh with a
//! bumped epoch instead.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::UNIX_EPOCH;

use gpsa_graph::{delta_path, open_live, DeltaBatch, DeltaLog, DiskCsr, GraphSnapshot};

#[cfg(feature = "chaos")]
use crate::fault::{CompactPoint, DeltaFault, ServeFaultPlan};

use crate::error::ServeError;
use crate::json::Json;

/// One resident graph.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// The live merged view: shared base mmap ⊕ in-memory delta overlay.
    pub snapshot: Arc<GraphSnapshot>,
    /// The CSR file currently backing the snapshot (`base_path` until the
    /// first compaction, `{base_path}.e{epoch}` after).
    pub path: PathBuf,
    /// The path the id was registered with — the anchor compaction
    /// outputs are named after, and the file whose stamp makes
    /// re-registration idempotent. Never deleted by the registry.
    pub base_path: PathBuf,
    /// `file_stamp` of `base_path` at registration (the no-op detector).
    pub base_stamp: (u64, u64, u64),
    /// Bumped on every real (re-)register and every finished compaction;
    /// starts at 1.
    pub epoch: u64,
}

impl GraphEntry {
    /// Delta batches folded into the current epoch's snapshot.
    pub fn delta_seq(&self) -> u64 {
        self.snapshot.delta_seq()
    }
}

/// A pinned compaction: the snapshot being folded and where the new CSR
/// goes. Produced by [`GraphRegistry::begin_compact`]; the caller runs
/// [`GraphSnapshot::compact_to`] (typically off-thread), then hands the
/// ticket to [`GraphRegistry::finish_compact`].
#[derive(Debug, Clone)]
pub struct CompactTicket {
    /// Which graph is compacting.
    pub graph_id: String,
    /// The epoch being folded (finish re-checks it).
    pub epoch: u64,
    /// The snapshot to fold — pinned, so later mutations don't leak in.
    pub snapshot: Arc<GraphSnapshot>,
    /// Destination CSR path (`{base}.e{epoch+1}`).
    pub dest: PathBuf,
}

/// A row of [`GraphRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registered id.
    pub graph_id: String,
    /// Current epoch.
    pub epoch: u64,
    /// Delta batches folded into the current epoch.
    pub delta_seq: u64,
    /// Vertex count of the merged view.
    pub n_vertices: usize,
    /// Edge count of the merged view.
    pub n_edges: usize,
    /// Mapped bytes (CSR body; the overlay is memory-resident).
    pub bytes: u64,
}

/// Resident graphs by id, with a resident-byte budget.
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: HashMap<String, GraphEntry>,
    /// Open delta-log handles, keyed like `graphs`. Kept apart because a
    /// log handle is not cloneable; opened lazily on first mutation.
    logs: HashMap<String, DeltaLog>,
    budget_bytes: u64,
    manifest: Option<PathBuf>,
    #[cfg(feature = "chaos")]
    fault: Option<Arc<ServeFaultPlan>>,
}

/// `(size, mtime_secs, mtime_nanos)` of a file — the change detector the
/// manifest stores per graph.
fn file_stamp(path: &Path) -> (u64, u64, u64) {
    let Ok(meta) = std::fs::metadata(path) else {
        return (0, 0, 0);
    };
    let (s, ns) = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| (d.as_secs(), d.subsec_nanos() as u64))
        .unwrap_or((0, 0));
    (meta.len(), s, ns)
}

impl GraphRegistry {
    /// An empty, memory-only registry with the given resident-byte budget
    /// (`u64::MAX` = unlimited).
    pub fn new(budget_bytes: u64) -> Self {
        GraphRegistry {
            graphs: HashMap::new(),
            logs: HashMap::new(),
            budget_bytes,
            manifest: None,
            #[cfg(feature = "chaos")]
            fault: None,
        }
    }

    /// Install a chaos fault plan consulted on delta appends and at
    /// compaction commit points.
    #[cfg(feature = "chaos")]
    pub fn set_fault_plan(&mut self, plan: Arc<ServeFaultPlan>) {
        self.fault = Some(plan);
    }

    /// A durable registry backed by `manifest`, restoring every entry a
    /// previous server persisted there — **live**: each entry's delta log
    /// is replayed (torn tail truncated), so the restored snapshot is the
    /// last durable mutation state, at its persisted epoch. Restore is
    /// best-effort and never fails the boot: entries whose file vanished
    /// or no longer opens are dropped (with a note on stderr), entries
    /// whose CSR bytes changed since registration come back freshly
    /// loaded with a **bumped epoch** and their delta log discarded (it
    /// described the old bytes). Returns the registry and how many graphs
    /// were restored.
    pub fn open(budget_bytes: u64, manifest: PathBuf) -> (Self, usize) {
        let mut reg = GraphRegistry::new(budget_bytes);
        reg.manifest = Some(manifest.clone());
        let rows = match std::fs::read_to_string(&manifest).ok().and_then(|text| {
            Json::parse(&text).ok().and_then(|j| {
                j.get("graphs")
                    .and_then(|g| g.as_arr().map(<[Json]>::to_vec))
            })
        }) {
            Some(rows) => rows,
            None => return (reg, 0),
        };
        let mut changed = false;
        for row in &rows {
            let Some((id, path)) = row
                .get("graph_id")
                .and_then(Json::as_str)
                .zip(row.get("path").and_then(Json::as_str))
            else {
                continue;
            };
            let path = PathBuf::from(path);
            let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
            let mut epoch = u("epoch").max(1);
            let stamp_changed = file_stamp(&path) != (u("bytes"), u("mtime_s"), u("mtime_ns"));
            if stamp_changed {
                // The CSR bytes changed while the server was down: same
                // id, new graph. The delta log described the *old* bytes,
                // so it is dropped, and the epoch bump makes old cached
                // results structurally unmatchable.
                let _ = std::fs::remove_file(delta_path(&path));
                epoch += 1;
                changed = true;
            }
            let (snapshot, log) = match open_live(&path) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!(
                        "gpsa-serve: dropping graph {id:?} on restore: cannot open {}: {e}",
                        path.display()
                    );
                    changed = true;
                    continue;
                }
            };
            if reg.resident_bytes() + snapshot.file_bytes() as u64 > reg.budget_bytes {
                eprintln!("gpsa-serve: dropping graph {id:?} on restore: over memory budget");
                changed = true;
                continue;
            }
            let base_path = row
                .get("base_path")
                .and_then(Json::as_str)
                .map(PathBuf::from)
                .unwrap_or_else(|| path.clone());
            let base_stamp = if base_path == path {
                file_stamp(&path)
            } else {
                (u("base_bytes"), u("base_mtime_s"), u("base_mtime_ns"))
            };
            reg.graphs.insert(
                id.to_string(),
                GraphEntry {
                    snapshot: Arc::new(snapshot),
                    path,
                    base_path,
                    base_stamp,
                    epoch,
                },
            );
            reg.logs.insert(id.to_string(), log);
        }
        if changed {
            reg.persist();
        }
        let n = reg.graphs.len();
        (reg, n)
    }

    /// Rewrite the manifest to match resident state, atomically. A no-op
    /// for memory-only registries; failures are reported, not fatal (the
    /// server keeps serving, it just restores less after the next crash).
    fn persist(&self) {
        let Some(manifest) = &self.manifest else {
            return;
        };
        let mut rows: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        rows.sort_unstable();
        let graphs: Vec<Json> = rows
            .iter()
            .map(|id| {
                let e = &self.graphs[*id];
                let (bytes, mtime_s, mtime_ns) = file_stamp(&e.path);
                Json::obj()
                    .set("graph_id", Json::str(*id))
                    .set("path", Json::str(e.path.to_string_lossy()))
                    .set("base_path", Json::str(e.base_path.to_string_lossy()))
                    .set("epoch", Json::num(e.epoch))
                    .set("bytes", Json::num(bytes))
                    .set("mtime_s", Json::num(mtime_s))
                    .set("mtime_ns", Json::num(mtime_ns))
                    .set("base_bytes", Json::num(e.base_stamp.0))
                    .set("base_mtime_s", Json::num(e.base_stamp.1))
                    .set("base_mtime_ns", Json::num(e.base_stamp.2))
            })
            .collect();
        let body = Json::obj().set("graphs", Json::Arr(graphs)).encode();
        let write = || -> std::io::Result<()> {
            if let Some(parent) = manifest.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let tmp = manifest.with_extension("manifest.tmp");
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, manifest)
        };
        if let Err(e) = write() {
            eprintln!(
                "gpsa-serve: cannot persist registry manifest {}: {e}",
                manifest.display()
            );
        }
    }

    /// Open the CSR at `path` and make it resident under `id`. Returns
    /// the entry and whether the registration **bumped** the epoch.
    ///
    /// Re-registering an id with the same file, byte-identical (size +
    /// mtime stamp), is a complete no-op: the live entry — including any
    /// delta overlay and compacted epoch — is returned unchanged with
    /// `bumped = false`, so callers skip the result-cache purge. Only a
    /// changed file (or a new path) reloads: the fresh entry starts with
    /// an empty overlay, any stale sibling delta log is deleted, and the
    /// epoch bump (`bumped = true`) obliges the caller to purge cached
    /// results for the id.
    ///
    /// Fails with [`ServeError::ServerBusy`] when the graph would push
    /// resident bytes over the budget, and [`ServeError::BadRequest`]
    /// when the file cannot be opened.
    pub fn register(&mut self, id: &str, path: &Path) -> Result<(GraphEntry, bool), ServeError> {
        if id.is_empty() {
            return Err(ServeError::BadRequest("empty graph_id".to_string()));
        }
        if let Some(e) = self.graphs.get(id) {
            if e.base_path == path && e.base_stamp == file_stamp(path) {
                return Ok((e.clone(), false));
            }
        }
        let graph = DiskCsr::open(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot open {}: {e}", path.display())))?;
        let incoming = graph.file_bytes() as u64;
        let displaced = self
            .graphs
            .get(id)
            .map(|e| e.snapshot.file_bytes() as u64)
            .unwrap_or(0);
        let resident_after = self.resident_bytes() - displaced + incoming;
        if resident_after > self.budget_bytes {
            return Err(ServeError::ServerBusy(format!(
                "registering {id:?} ({incoming} bytes) would put {resident_after} resident \
                 bytes over the {}-byte budget",
                self.budget_bytes
            )));
        }
        // Registration means "serve this file's bytes": a delta log left
        // beside the file belongs to a previous live state, not to this
        // registration, so it must not replay into the fresh entry.
        let _ = std::fs::remove_file(delta_path(path));
        let epoch = self.graphs.get(id).map(|e| e.epoch + 1).unwrap_or(1);
        let entry = GraphEntry {
            snapshot: Arc::new(GraphSnapshot::from_csr(Arc::new(graph))),
            path: path.to_path_buf(),
            base_path: path.to_path_buf(),
            base_stamp: file_stamp(path),
            epoch,
        };
        self.graphs.insert(id.to_string(), entry.clone());
        self.logs.remove(id);
        self.persist();
        Ok((entry, true))
    }

    /// Apply one mutation batch to `id`: append it to the fsync'd delta
    /// log (durability first), then swap in a snapshot with the batch
    /// folded into the overlay. Returns the post-mutation entry; its
    /// [`GraphEntry::delta_seq`] has advanced by one, which is what
    /// invalidates cached results computed before the mutation.
    pub fn mutate(&mut self, id: &str, batch: &DeltaBatch) -> Result<GraphEntry, ServeError> {
        let Some(entry) = self.graphs.get_mut(id) else {
            return Err(ServeError::UnknownGraph(format!(
                "graph {id:?} is not registered"
            )));
        };
        if !self.logs.contains_key(id) {
            let (log, replayed) = DeltaLog::open(&entry.path)
                .map_err(|e| ServeError::Engine(format!("cannot open delta log: {e}")))?;
            debug_assert_eq!(
                replayed.len() as u64,
                entry.snapshot.delta_seq(),
                "log and overlay out of sync for {id:?}"
            );
            self.logs.insert(id.to_string(), log);
        }
        let log = self.logs.get_mut(id).expect("just inserted");
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            if plan.on_delta_append() == DeltaFault::TornAbort {
                // Half a framed record, no fsync, then die — the torn
                // tail recovery must truncate away on restart.
                let line = gpsa_graph::framed::encode_line(&batch.encode_body());
                let half = &line.as_bytes()[..line.len() / 2];
                if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(log.path()) {
                    let _ = f.write_all(half);
                    let _ = f.flush();
                }
                eprintln!("chaos: aborting mid-delta-append for graph {id:?}");
                std::process::abort();
            }
        }
        log.append(batch)
            .map_err(|e| ServeError::Engine(format!("delta log append failed: {e}")))?;
        // Durable: now fold into a fresh overlay and publish the new
        // snapshot. In-flight jobs keep their pinned Arc.
        let mut overlay = (**entry.snapshot.overlay()).clone();
        overlay.apply(entry.snapshot.base(), batch);
        entry.snapshot = Arc::new(GraphSnapshot::new(
            entry.snapshot.base().clone(),
            Arc::new(overlay),
        ));
        Ok(entry.clone())
    }

    /// Pin the current snapshot of `id` for compaction and name the
    /// destination CSR (`{base}.e{epoch+1}`). The fold itself
    /// ([`GraphSnapshot::compact_to`] on the ticket's snapshot) is the
    /// caller's to run — typically on a background thread — before
    /// [`GraphRegistry::finish_compact`].
    pub fn begin_compact(&self, id: &str) -> Result<CompactTicket, ServeError> {
        let Some(entry) = self.graphs.get(id) else {
            return Err(ServeError::UnknownGraph(format!(
                "graph {id:?} is not registered"
            )));
        };
        let dest = PathBuf::from(format!(
            "{}.e{}",
            entry.base_path.display(),
            entry.epoch + 1
        ));
        Ok(CompactTicket {
            graph_id: id.to_string(),
            epoch: entry.epoch,
            snapshot: entry.snapshot.clone(),
            dest,
        })
    }

    /// Install a finished compaction: open the new CSR, bump the epoch,
    /// reset the delta seq, and persist the manifest — the commit point.
    /// Old-epoch files (the previous compacted CSR, its index, its delta
    /// log — never the registered base file) are deleted best-effort
    /// *after* the commit; a crash between commit and cleanup only leaks
    /// files. Mutations that raced past [`begin_compact`] are rejected by
    /// the caller (the scheduler serializes mutate against compaction),
    /// and a ticket whose epoch no longer matches is refused.
    pub fn finish_compact(&mut self, ticket: &CompactTicket) -> Result<GraphEntry, ServeError> {
        let Some(entry) = self.graphs.get_mut(&ticket.graph_id) else {
            return Err(ServeError::UnknownGraph(format!(
                "graph {:?} is not registered",
                ticket.graph_id
            )));
        };
        if entry.epoch != ticket.epoch {
            return Err(ServeError::BadRequest(format!(
                "graph {:?} moved from epoch {} to {} during compaction",
                ticket.graph_id, ticket.epoch, entry.epoch
            )));
        }
        let graph = DiskCsr::open(&ticket.dest)
            .map_err(|e| ServeError::Engine(format!("compacted CSR does not open: {e}")))?;
        let old_path = entry.path.clone();
        entry.snapshot = Arc::new(GraphSnapshot::from_csr(Arc::new(graph)));
        entry.path = ticket.dest.clone();
        entry.epoch += 1;
        let base_path = entry.base_path.clone();
        self.logs.remove(&ticket.graph_id);
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            if plan.on_compact(CompactPoint::BeforeManifest) {
                eprintln!("chaos: aborting before compaction manifest commit");
                std::process::abort();
            }
        }
        self.persist();
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            if plan.on_compact(CompactPoint::AfterManifest) {
                eprintln!("chaos: aborting after compaction manifest commit");
                std::process::abort();
            }
        }
        let _ = std::fs::remove_file(delta_path(&old_path));
        if old_path != base_path {
            let _ = std::fs::remove_file(&old_path);
            let _ = std::fs::remove_file(gpsa_graph::disk_csr::index_path(&old_path));
        }
        Ok(self.graphs[&ticket.graph_id].clone())
    }

    /// The resident entry for `id`, if registered.
    pub fn get(&self, id: &str) -> Option<&GraphEntry> {
        self.graphs.get(id)
    }

    /// Total mapped bytes across resident graphs.
    pub fn resident_bytes(&self) -> u64 {
        self.graphs
            .values()
            .map(|e| e.snapshot.file_bytes() as u64)
            .sum()
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Current `graph_id → (epoch, delta_seq)` map (what the result cache
    /// validates restored entries against).
    pub fn versions(&self) -> HashMap<String, (u64, u64)> {
        self.graphs
            .iter()
            .map(|(id, e)| (id.clone(), (e.epoch, e.delta_seq())))
            .collect()
    }

    /// Snapshot of every resident graph, sorted by id.
    pub fn list(&self) -> Vec<GraphInfo> {
        let mut rows: Vec<GraphInfo> = self
            .graphs
            .iter()
            .map(|(id, e)| GraphInfo {
                graph_id: id.clone(),
                epoch: e.epoch,
                delta_seq: e.delta_seq(),
                n_vertices: e.snapshot.n_vertices(),
                n_edges: e.snapshot.n_edges(),
                bytes: e.snapshot.file_bytes() as u64,
            })
            .collect();
        rows.sort_by(|a, b| a.graph_id.cmp(&b.graph_id));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::{generate, preprocess, Edge};

    fn materialize_in(dir: &Path, tag: &str, el: gpsa_graph::EdgeList) -> PathBuf {
        let path = dir.join(format!("{tag}.gcsr"));
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
        path
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-serve-reg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn materialize(tag: &str, el: gpsa_graph::EdgeList) -> PathBuf {
        let dir = test_dir(tag);
        materialize_in(&dir, tag, el)
    }

    #[test]
    fn register_get_and_idempotent_reregister() {
        let path = materialize("cycle", generate::cycle(32));
        let mut reg = GraphRegistry::new(u64::MAX);
        let (first, bumped) = reg.register("g", &path).unwrap();
        assert_eq!(first.epoch, 1);
        assert!(bumped, "first registration is a bump");
        let e = reg.get("g").unwrap();
        assert_eq!(e.epoch, 1);
        assert_eq!(e.snapshot.n_vertices(), 32);
        // Same id, same unchanged file: complete no-op, no epoch bump —
        // the satellite regression for boot scripts that re-register on
        // every start.
        let (second, bumped) = reg.register("g", &path).unwrap();
        assert_eq!(second.epoch, 1);
        assert!(!bumped, "byte-identical re-register must not bump");
        assert_eq!(reg.len(), 1);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn reregister_keeps_live_overlay_but_changed_bytes_reset() {
        let dir = test_dir("rereg");
        let path = materialize_in(&dir, "g", generate::chain(8));
        let mut reg = GraphRegistry::new(u64::MAX);
        reg.register("g", &path).unwrap();
        reg.mutate("g", &DeltaBatch::Add(vec![Edge::new(0, 5)]))
            .unwrap();
        assert_eq!(reg.get("g").unwrap().delta_seq(), 1);
        // Unchanged file: the live overlay survives re-registration.
        let (e, bumped) = reg.register("g", &path).unwrap();
        assert!(!bumped);
        assert_eq!(e.delta_seq(), 1);
        assert_eq!(e.snapshot.n_edges(), 8);
        // Rewrite the file: a real re-register resets overlay and log.
        std::thread::sleep(std::time::Duration::from_millis(20));
        preprocess::edges_to_csr(
            generate::chain(16),
            &path,
            &preprocess::PreprocessOptions::default(),
        )
        .unwrap();
        let (e, bumped) = reg.register("g", &path).unwrap();
        assert!(bumped);
        assert_eq!(e.epoch, 2);
        assert_eq!(e.delta_seq(), 0);
        assert!(
            !delta_path(&path).exists(),
            "stale delta log must be deleted on reload"
        );
    }

    #[test]
    fn mutate_is_durable_and_replayed_on_restore() {
        let dir = test_dir("mutdur");
        let manifest = dir.join("registry.manifest");
        let path = materialize_in(&dir, "g", generate::chain(6));
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("g", &path).unwrap();
            let e = reg
                .mutate(
                    "g",
                    &DeltaBatch::Add(vec![Edge::new(0, 3), Edge::new(9, 2)]),
                )
                .unwrap();
            assert_eq!(e.delta_seq(), 1);
            assert_eq!(e.snapshot.n_vertices(), 10, "overlay grows the graph");
            let e = reg
                .mutate("g", &DeltaBatch::Remove(vec![Edge::new(0, 1)]))
                .unwrap();
            assert_eq!(e.delta_seq(), 2);
            assert_eq!(e.snapshot.n_edges(), 6); // 5 base + 2 added − 1 removed
        }
        // A restarted registry replays the log: same epoch, same seq,
        // same merged view.
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 1);
        let e = reg.get("g").unwrap();
        assert_eq!((e.epoch, e.delta_seq()), (1, 2));
        assert_eq!(e.snapshot.n_edges(), 6);
        assert_eq!(e.snapshot.targets(0), vec![3]); // 0→1 removed, 0→3 added
    }

    #[test]
    fn compaction_bumps_epoch_resets_seq_and_survives_restart() {
        let dir = test_dir("compact");
        let manifest = dir.join("registry.manifest");
        let path = materialize_in(&dir, "g", generate::chain(6));
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("g", &path).unwrap();
            reg.mutate("g", &DeltaBatch::Add(vec![Edge::new(2, 0)]))
                .unwrap();
            let ticket = reg.begin_compact("g").unwrap();
            assert_eq!(ticket.dest, PathBuf::from(format!("{}.e2", path.display())));
            ticket.snapshot.compact_to(&ticket.dest).unwrap();
            let e = reg.finish_compact(&ticket).unwrap();
            assert_eq!((e.epoch, e.delta_seq()), (2, 0));
            assert_eq!(e.snapshot.n_edges(), 6);
            assert_eq!(e.snapshot.targets(2), vec![3, 0]);
            assert!(!delta_path(&path).exists(), "folded delta log must be gone");
            // Mutating the compacted epoch starts a fresh log at the new
            // path.
            let e = reg
                .mutate("g", &DeltaBatch::Add(vec![Edge::new(5, 5)]))
                .unwrap();
            assert_eq!((e.epoch, e.delta_seq()), (2, 1));
        }
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 1);
        let e = reg.get("g").unwrap();
        assert_eq!((e.epoch, e.delta_seq()), (2, 1));
        assert_eq!(e.snapshot.targets(5), vec![5]);
        // A stale ticket from the pre-compaction epoch is refused.
        let mut reg = reg;
        let stale = CompactTicket {
            graph_id: "g".into(),
            epoch: 1,
            snapshot: reg.get("g").unwrap().snapshot.clone(),
            dest: dir.join("stale.gcsr"),
        };
        assert!(matches!(
            reg.finish_compact(&stale),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn second_compaction_cleans_up_previous_epoch_file() {
        let dir = test_dir("compact2");
        let path = materialize_in(&dir, "g", generate::chain(5));
        let mut reg = GraphRegistry::new(u64::MAX);
        reg.register("g", &path).unwrap();
        reg.mutate("g", &DeltaBatch::Add(vec![Edge::new(0, 2)]))
            .unwrap();
        let t1 = reg.begin_compact("g").unwrap();
        t1.snapshot.compact_to(&t1.dest).unwrap();
        reg.finish_compact(&t1).unwrap();
        assert!(t1.dest.exists());
        reg.mutate("g", &DeltaBatch::Add(vec![Edge::new(0, 3)]))
            .unwrap();
        let t2 = reg.begin_compact("g").unwrap();
        t2.snapshot.compact_to(&t2.dest).unwrap();
        let e = reg.finish_compact(&t2).unwrap();
        assert_eq!((e.epoch, e.delta_seq()), (3, 0));
        assert_eq!(e.snapshot.targets(0), vec![1, 2, 3]);
        assert!(!t1.dest.exists(), "superseded epoch file must be deleted");
        assert!(path.exists(), "the registered base file is never deleted");
    }

    #[test]
    fn budget_refuses_but_leaves_registry_intact() {
        let small = materialize("small", generate::chain(16));
        let big = materialize("big", generate::cycle(4096));
        let mut reg = GraphRegistry::new(0);
        // Learn the small graph's real size, then budget exactly for it.
        let bytes = DiskCsr::open(&small).unwrap().file_bytes() as u64;
        let mut reg2 = GraphRegistry::new(bytes);
        assert!(matches!(
            reg.register("s", &small),
            Err(ServeError::ServerBusy(_))
        ));
        reg2.register("s", &small).unwrap();
        let err = reg2.register("b", &big).unwrap_err();
        assert!(matches!(err, ServeError::ServerBusy(_)), "{err:?}");
        // The refused register didn't disturb the resident entry.
        assert_eq!(reg2.len(), 1);
        assert!(reg2.get("s").is_some());
        // Re-registering the unchanged resident file is a budget-neutral
        // no-op.
        let (e, bumped) = reg2.register("s", &small).unwrap();
        assert_eq!(e.epoch, 1);
        assert!(!bumped);
    }

    #[test]
    fn unknown_path_is_bad_request() {
        let mut reg = GraphRegistry::new(u64::MAX);
        let err = reg
            .register("g", Path::new("/nonexistent/nope.gcsr"))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(reg.is_empty());
        let err = reg
            .mutate("g", &DeltaBatch::Add(vec![Edge::new(0, 1)]))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownGraph(_)));
        assert!(matches!(
            reg.begin_compact("g"),
            Err(ServeError::UnknownGraph(_))
        ));
    }

    #[test]
    fn list_is_sorted_and_complete() {
        let a = materialize("la", generate::chain(8));
        let b = materialize("lb", generate::star(8));
        let mut reg = GraphRegistry::new(u64::MAX);
        reg.register("zz", &a).unwrap();
        reg.register("aa", &b).unwrap();
        reg.mutate("zz", &DeltaBatch::Add(vec![Edge::new(0, 7)]))
            .unwrap();
        let rows = reg.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].graph_id, "aa");
        assert_eq!(rows[1].graph_id, "zz");
        assert_eq!((rows[1].epoch, rows[1].delta_seq), (1, 1));
        assert_eq!(reg.resident_bytes(), rows[0].bytes + rows[1].bytes);
        assert_eq!(reg.versions()["zz"], (1, 1));
        assert_eq!(reg.versions()["aa"], (1, 0));
    }

    #[test]
    fn manifest_restores_graphs_and_epochs() {
        let dir = test_dir("restore");
        let manifest = dir.join("registry.manifest");
        let a = materialize_in(&dir, "ma", generate::cycle(16));
        let b = materialize_in(&dir, "mb", generate::chain(8));
        {
            let (mut reg, restored) = GraphRegistry::open(u64::MAX, manifest.clone());
            assert_eq!(restored, 0);
            reg.register("a", &a).unwrap();
            // Re-registering the unchanged file stays at epoch 1.
            assert!(!reg.register("a", &a).unwrap().1);
            reg.register("b", &b).unwrap();
        }
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 2);
        assert_eq!(reg.get("a").unwrap().epoch, 1, "epochs survive restart");
        assert_eq!(reg.get("b").unwrap().epoch, 1);
        assert_eq!(reg.get("a").unwrap().snapshot.n_vertices(), 16);
        // Registering the unchanged file after restore is still a no-op.
        let mut reg = reg;
        let (e, bumped) = reg.register("a", &a).unwrap();
        assert_eq!(e.epoch, 1);
        assert!(!bumped);
    }

    #[test]
    fn changed_file_bumps_epoch_on_restore() {
        let dir = test_dir("changed");
        let manifest = dir.join("registry.manifest");
        let path = materialize_in(&dir, "mc", generate::cycle(16));
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("g", &path).unwrap();
            reg.mutate("g", &DeltaBatch::Add(vec![Edge::new(0, 9)]))
                .unwrap();
        }
        // Replace the graph file while the "server" is down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        gpsa_graph::preprocess::edges_to_csr(
            generate::cycle(32),
            &path,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )
        .unwrap();
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest.clone());
        assert_eq!(restored, 1);
        let e = reg.get("g").unwrap();
        assert_eq!(e.epoch, 2, "changed bytes must look like a re-register");
        assert_eq!(e.snapshot.n_vertices(), 32);
        assert_eq!(
            e.delta_seq(),
            0,
            "the old bytes' delta log must not replay onto new bytes"
        );
        // The bump was persisted: a second restart does not bump again.
        drop(reg);
        let (reg, _) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(reg.get("g").unwrap().epoch, 2);
    }

    #[test]
    fn missing_file_is_dropped_on_restore() {
        let dir = test_dir("missing");
        let manifest = dir.join("registry.manifest");
        let keep = materialize_in(&dir, "mk", generate::chain(8));
        let doomed = dir.join("doomed.gcsr");
        gpsa_graph::preprocess::edges_to_csr(
            generate::chain(8),
            &doomed,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )
        .unwrap();
        {
            let (mut reg, _) = GraphRegistry::open(u64::MAX, manifest.clone());
            reg.register("keep", &keep).unwrap();
            reg.register("doomed", &doomed).unwrap();
        }
        std::fs::remove_file(&doomed).unwrap();
        let (reg, restored) = GraphRegistry::open(u64::MAX, manifest);
        assert_eq!(restored, 1);
        assert!(reg.get("keep").is_some());
        assert!(reg.get("doomed").is_none());
    }
}
