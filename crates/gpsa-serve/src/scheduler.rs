//! The job scheduler and its runner fleet, built on the same actor
//! runtime the engine itself uses.
//!
//! One [`Scheduler`] actor owns *all* mutable server state — registry,
//! cache, queues, counters — so there is no locking anywhere in the
//! serving path; connection threads talk to it purely by message.
//! `max_concurrent_jobs` [`Runner`] actors execute jobs; each engine run
//! blocks its runner for the duration, which is why the serve
//! [`actor::System`] is sized with one worker thread per runner plus one
//! so the scheduler always stays responsive.
//!
//! Admission control (tentpole): a submit that finds an idle runner
//! starts immediately; otherwise it queues FIFO within its priority
//! class; a full queue answers `server_busy` without disturbing in-flight
//! work. Deadlines are re-checked at every hand-off point (queue pop and
//! run start), and running jobs arm the engine's superstep watchdog with
//! their remaining budget so a wedged run is torn down rather than
//! holding a runner forever.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use actor::{Actor, Addr, Ctx};
use crossbeam_channel::Sender;
use gpsa::{Engine, EngineError};
use gpsa_graph::DiskCsr;

use crate::cache::{CacheKey, ResultCache};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::job::{run_job, JobOutcome, JobResponse, JobTicket, Priority};
use crate::registry::{GraphInfo, GraphRegistry};
use crate::stats::ServerStats;

/// Floor for the per-superstep watchdog derived from a job deadline, so
/// a nearly-expired job still gets a meaningful (if tiny) timeout rather
/// than a zero one.
const MIN_WATCHDOG: Duration = Duration::from_millis(10);

/// Everything the scheduler can be asked to do.
pub enum SchedulerMsg {
    /// Submit a job; the reply goes out on the ticket's channel.
    Submit(JobTicket),
    /// Open a CSR file and make it resident.
    RegisterGraph {
        /// Id to register under.
        graph_id: String,
        /// On-disk CSR path.
        path: PathBuf,
        /// Result + stats snapshot.
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
    },
    /// Snapshot the resident graphs.
    ListGraphs {
        /// Rows + stats snapshot.
        reply: Sender<(Vec<GraphInfo>, ServerStats)>,
    },
    /// Snapshot the counters.
    GetStats {
        /// The snapshot.
        reply: Sender<ServerStats>,
    },
    /// A runner finished (successfully or not); always sent, even when
    /// the job panicked, so runner capacity can never leak.
    Done {
        /// Which runner is idle again.
        runner: usize,
        /// The job's ticket (reply channel still unsent).
        ticket: JobTicket,
        /// Epoch of the graph the job ran against, for the cache key.
        epoch: u64,
        /// What happened.
        result: Result<JobOutcome, ServeError>,
    },
}

/// A queued job with its pre-resolved graph (resolving at submit keeps
/// `unknown_graph` synchronous and pins the epoch the job will run — and
/// be cached — against).
struct QueuedJob {
    ticket: JobTicket,
    graph: Arc<DiskCsr>,
    epoch: u64,
}

/// The scheduler actor.
pub struct Scheduler {
    config: ServeConfig,
    registry: GraphRegistry,
    cache: ResultCache,
    queue_high: VecDeque<QueuedJob>,
    queue_normal: VecDeque<QueuedJob>,
    runners: Vec<Addr<Runner>>,
    idle: Vec<usize>,
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_rejected: u64,
    jobs_deadline: u64,
    jobs_failed: u64,
}

impl Scheduler {
    /// Build a scheduler for `config`. Runners are spawned in
    /// [`Actor::started`], once the scheduler has an address.
    pub fn new(config: ServeConfig) -> Self {
        let registry = GraphRegistry::new(config.memory_budget_bytes);
        let cache = ResultCache::new(config.cache_capacity);
        Scheduler {
            config,
            registry,
            cache,
            queue_high: VecDeque::new(),
            queue_normal: VecDeque::new(),
            runners: Vec::new(),
            idle: Vec::new(),
            jobs_submitted: 0,
            jobs_completed: 0,
            jobs_rejected: 0,
            jobs_deadline: 0,
            jobs_failed: 0,
        }
    }

    fn queue_depth(&self) -> usize {
        self.queue_high.len() + self.queue_normal.len()
    }

    fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses) = self.cache.counters();
        ServerStats {
            jobs_submitted: self.jobs_submitted,
            jobs_completed: self.jobs_completed,
            jobs_rejected: self.jobs_rejected,
            jobs_deadline: self.jobs_deadline,
            jobs_failed: self.jobs_failed,
            cache_hits,
            cache_misses,
            cache_len: self.cache.len() as u64,
            queue_depth: self.queue_depth() as u64,
            running: (self.runners.len() - self.idle.len()) as u64,
            max_concurrent_jobs: self.config.max_concurrent_jobs as u64,
            graphs_resident: self.registry.len() as u64,
            resident_bytes: self.registry.resident_bytes(),
        }
    }

    fn cache_key(&self, ticket: &JobTicket, epoch: u64) -> CacheKey {
        CacheKey {
            graph_id: ticket.spec.graph_id.clone(),
            algorithm: ticket.spec.algorithm.name().to_string(),
            params: ticket.spec.algorithm.canonical_params(),
            epoch,
        }
    }

    fn reply_err(&mut self, ticket: &JobTicket, err: ServeError) {
        match &err {
            ServeError::ServerBusy(_) => self.jobs_rejected += 1,
            ServeError::DeadlineExceeded(_) => self.jobs_deadline += 1,
            _ => self.jobs_failed += 1,
        }
        let _ = ticket.reply.send((Err(err), self.stats()));
    }

    fn reply_hit(&mut self, ticket: &JobTicket, outcome: Arc<JobOutcome>) {
        let stats = self.stats();
        let resp = JobResponse {
            job_id: ticket.job_id,
            cache_hit: true,
            outcome,
            queue_wait: Duration::ZERO,
            run_time: Duration::ZERO,
            stats: stats.clone(),
        };
        let _ = ticket.reply.send((Ok(resp), stats));
    }

    fn dispatch(&mut self, job: QueuedJob) {
        let runner = self.idle.pop().expect("dispatch without an idle runner");
        // Send only fails during system shutdown, when no reply matters.
        let _ = self.runners[runner].send(RunJob {
            ticket: job.ticket,
            graph: job.graph,
            epoch: job.epoch,
        });
    }

    /// Hand queued jobs to idle runners, expiring any whose deadline
    /// passed while they waited.
    fn drain_queue(&mut self) {
        while !self.idle.is_empty() {
            let job = match self.queue_high.pop_front() {
                Some(j) => j,
                None => match self.queue_normal.pop_front() {
                    Some(j) => j,
                    None => return,
                },
            };
            if job.ticket.remaining() == Some(Duration::ZERO) {
                let wait = job.ticket.submitted.elapsed();
                self.reply_err(
                    &job.ticket,
                    ServeError::DeadlineExceeded(format!(
                        "job {} expired after {wait:?} in the queue",
                        job.ticket.job_id
                    )),
                );
                continue;
            }
            self.dispatch(job);
        }
    }

    fn handle_submit(&mut self, ticket: JobTicket) {
        let Some((graph, epoch)) = self.registry.get(&ticket.spec.graph_id) else {
            let id = ticket.spec.graph_id.clone();
            self.reply_err(
                &ticket,
                ServeError::UnknownGraph(format!("graph {id:?} is not registered")),
            );
            return;
        };
        let key = self.cache_key(&ticket, epoch);
        if let Some(outcome) = self.cache.get(&key) {
            self.reply_hit(&ticket, outcome);
            return;
        }
        // Admission control: run now, or queue, or refuse — in that order.
        if self.idle.is_empty() && self.queue_depth() >= self.config.queue_capacity {
            let (depth, cap) = (self.queue_depth(), self.config.queue_capacity);
            self.reply_err(
                &ticket,
                ServeError::ServerBusy(format!(
                    "admission queue is full ({depth}/{cap} waiting, all \
                     {} runners busy); retry later",
                    self.runners.len()
                )),
            );
            return;
        }
        self.jobs_submitted += 1;
        let job = QueuedJob {
            ticket,
            graph,
            epoch,
        };
        if self.idle.is_empty() {
            match job.ticket.spec.priority {
                Priority::High => self.queue_high.push_back(job),
                Priority::Normal => self.queue_normal.push_back(job),
            }
        } else {
            self.dispatch(job);
        }
    }

    fn handle_done(
        &mut self,
        runner: usize,
        ticket: JobTicket,
        epoch: u64,
        result: Result<JobOutcome, ServeError>,
    ) {
        self.idle.push(runner);
        match result {
            Ok(outcome) => {
                self.jobs_completed += 1;
                let outcome = Arc::new(outcome);
                self.cache
                    .put(self.cache_key(&ticket, epoch), outcome.clone());
                let queue_wait = ticket.timer.get("queue_wait").unwrap_or(Duration::ZERO);
                let run_time = ticket.timer.get("run").unwrap_or(Duration::ZERO);
                let stats = self.stats();
                let resp = JobResponse {
                    job_id: ticket.job_id,
                    cache_hit: false,
                    outcome,
                    queue_wait,
                    run_time,
                    stats: stats.clone(),
                };
                let _ = ticket.reply.send((Ok(resp), stats));
            }
            Err(err) => self.reply_err(&ticket, err),
        }
        self.drain_queue();
    }
}

impl Actor for Scheduler {
    type Msg = SchedulerMsg;

    fn started(&mut self, ctx: &mut Ctx<'_, Self>) {
        for id in 0..self.config.max_concurrent_jobs {
            let runner = Runner {
                id,
                scheduler: ctx.addr(),
                config: self.config.clone(),
            };
            self.runners.push(ctx.system().spawn(runner));
            self.idle.push(id);
        }
    }

    fn handle(&mut self, msg: SchedulerMsg, _ctx: &mut Ctx<'_, Self>) {
        match msg {
            SchedulerMsg::Submit(ticket) => self.handle_submit(ticket),
            SchedulerMsg::RegisterGraph {
                graph_id,
                path,
                reply,
            } => {
                let result = self.registry.register(&graph_id, &path).map(|entry| {
                    // Epoch bumped: old cached results can never match
                    // again; reclaim their memory eagerly.
                    self.cache.purge_graph(&graph_id);
                    GraphInfo {
                        graph_id: graph_id.clone(),
                        epoch: entry.epoch,
                        n_vertices: entry.graph.n_vertices(),
                        n_edges: entry.graph.n_edges(),
                        bytes: entry.graph.file_bytes() as u64,
                    }
                });
                let _ = reply.send((result, self.stats()));
            }
            SchedulerMsg::ListGraphs { reply } => {
                let _ = reply.send((self.registry.list(), self.stats()));
            }
            SchedulerMsg::GetStats { reply } => {
                let _ = reply.send(self.stats());
            }
            SchedulerMsg::Done {
                runner,
                ticket,
                epoch,
                result,
            } => self.handle_done(runner, ticket, epoch, result),
        }
    }
}

/// One job execution slot.
pub struct Runner {
    id: usize,
    scheduler: Addr<Scheduler>,
    config: ServeConfig,
}

/// The runner's only message: execute this job and report back.
pub struct RunJob {
    /// The job (ticket travels to the runner and back; the scheduler
    /// sends the reply).
    pub ticket: JobTicket,
    /// Pre-resolved shared graph.
    pub graph: Arc<DiskCsr>,
    /// Registry epoch pinned at submit.
    pub epoch: u64,
}

impl Runner {
    /// Execute the job body; every early return is an error the scheduler
    /// will relay.
    fn execute(&self, ticket: &JobTicket, graph: &Arc<DiskCsr>) -> Result<JobOutcome, ServeError> {
        let remaining = ticket.remaining();
        if remaining == Some(Duration::ZERO) {
            return Err(ServeError::DeadlineExceeded(format!(
                "job {} deadline ({:?}) expired before the run started",
                ticket.job_id, ticket.spec.deadline
            )));
        }
        // Job-unique scratch dir: concurrent jobs against the same graph
        // each get a private ValueFile (the shared mmap stays read-only).
        let scratch = self.config.job_scratch_dir(ticket.job_id);
        std::fs::create_dir_all(&scratch)
            .map_err(|e| ServeError::Engine(format!("cannot create scratch dir: {e}")))?;
        let value_file = scratch.join("values.gval");

        let mut econf = self.config.engine.clone();
        econf.work_dir = scratch.clone();
        econf.termination = ticket.spec.algorithm.termination();
        econf.resume = false;
        if let Some(rem) = remaining {
            // Per-job deadline reuses the engine's superstep watchdog: if
            // any superstep (or wedged fleet) outlives the remaining
            // budget, the watchdog fires and, with no retries allowed,
            // surfaces RetriesExhausted — which we map back to the job
            // deadline below.
            econf.superstep_deadline = Some(rem.max(MIN_WATCHDOG));
            econf.max_superstep_retries = 0;
        }
        let had_deadline = remaining.is_some();
        let engine = Engine::new(econf);
        let result = run_job(&engine, graph, &value_file, &ticket.spec.algorithm);
        let _ = std::fs::remove_dir_all(&scratch);
        match result {
            Ok(outcome) => {
                if ticket.remaining() == Some(Duration::ZERO) {
                    return Err(ServeError::DeadlineExceeded(format!(
                        "job {} finished after its deadline",
                        ticket.job_id
                    )));
                }
                Ok(outcome)
            }
            Err(EngineError::RetriesExhausted(causes)) if had_deadline => {
                Err(ServeError::DeadlineExceeded(format!(
                    "job {} hit its deadline mid-run: [{}]",
                    ticket.job_id,
                    causes.join("; ")
                )))
            }
            Err(e) => Err(ServeError::Engine(e.to_string())),
        }
    }
}

impl Actor for Runner {
    type Msg = RunJob;

    fn handle(&mut self, msg: RunJob, _ctx: &mut Ctx<'_, Self>) {
        let RunJob {
            mut ticket,
            graph,
            epoch,
        } = msg;
        ticket.timer.lap("queue_wait");
        // catch_unwind so Done is sent even if the engine panics: a lost
        // Done would leak this runner's capacity forever.
        let result = catch_unwind(AssertUnwindSafe(|| self.execute(&ticket, &graph)))
            .unwrap_or_else(|p| {
                let what = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                Err(ServeError::Engine(format!("job runner panicked: {what}")))
            });
        ticket.timer.lap("run");
        let _ = self.scheduler.send(SchedulerMsg::Done {
            runner: self.id,
            ticket,
            epoch,
            result,
        });
    }
}
