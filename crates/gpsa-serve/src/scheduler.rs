//! The job scheduler and its runner fleet, built on the same actor
//! runtime the engine itself uses.
//!
//! One [`Scheduler`] actor owns *all* mutable server state — registry,
//! cache, queues, journal, idempotency map, counters — so there is no
//! locking anywhere in the serving path; connection threads talk to it
//! purely by message. `max_concurrent_jobs` [`Runner`] actors execute
//! jobs; each engine run blocks its runner for the duration, which is why
//! the serve [`actor::System`] is sized with one worker thread per runner
//! plus one so the scheduler always stays responsive.
//!
//! Admission control is multi-tenant: every job belongs to a tenant
//! (client-supplied, defaulting per-connection) with its own pair of
//! priority queues. Runners are handed out by deficit-weighted
//! round-robin over the tenants with queued work, so a tenant flooding
//! the server can only ever claim its weight's share of capacity while
//! anyone else is waiting. Per-tenant quotas (max queued, max in-flight,
//! scratch-byte budget) shed the *offending* tenant's excess with
//! `quota_exceeded`; only genuine whole-server saturation answers
//! `server_busy`. Deadlines and cancellation tokens are re-checked at
//! every hand-off point (queue pop and run start), and running jobs arm
//! the engine's superstep watchdog with their remaining budget so a
//! wedged run is torn down rather than holding a runner forever.
//!
//! Durability (when [`ServeConfig::durable`]): every admitted job is
//! journaled `submitted → started → committed|failed`, fsync'd before the
//! state change takes effect. Construction replays the journal: the
//! scheduler sweeps orphaned job scratch, restores the registry from its
//! manifest and the result cache from its spill directory, rebuilds the
//! idempotency map from committed keyed jobs, and re-enqueues every
//! incomplete job — results are deterministic, so a replayed run answers
//! a later resubmission of the same idempotency key bit-identically to
//! the run the crash destroyed.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use std::collections::HashSet;

use actor::{Actor, Addr, Ctx};
use crossbeam_channel::Sender;
use gpsa::{Engine, EngineError};
use gpsa_graph::{DeltaBatch, GraphSnapshot};
use gpsa_metrics::timer::Timer;

use crate::cache::{CacheKey, ResultCache};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::job::{
    run_job, CancelToken, JobOutcome, JobResponse, JobSpec, JobTicket, Priority, SubmitReply,
};
use crate::journal::{sweep_scratch_dirs, JobJournal, JournalRecord};
use crate::registry::{CompactTicket, GraphEntry, GraphInfo, GraphRegistry};
use crate::stats::{ServerStats, TenantStats};

/// Wall-clock milliseconds since the epoch, for journal timestamps that
/// must stay meaningful across restarts (monotonic clocks don't).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Floor for the per-superstep watchdog derived from a job deadline, so
/// a nearly-expired job still gets a meaningful (if tiny) timeout rather
/// than a zero one.
const MIN_WATCHDOG: Duration = Duration::from_millis(10);

/// Everything the scheduler can be asked to do.
pub enum SchedulerMsg {
    /// Submit a job; the reply goes out on the ticket's channel.
    Submit(JobTicket),
    /// Open a CSR file and make it resident.
    RegisterGraph {
        /// Id to register under.
        graph_id: String,
        /// On-disk CSR path.
        path: PathBuf,
        /// Result + stats snapshot.
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
    },
    /// Snapshot the resident graphs.
    ListGraphs {
        /// Rows + stats snapshot.
        reply: Sender<(Vec<GraphInfo>, ServerStats)>,
    },
    /// Snapshot the counters.
    GetStats {
        /// The snapshot.
        reply: Sender<ServerStats>,
    },
    /// A connection was shed for stalling mid-frame (bookkeeping only).
    NoteShed,
    /// A submitter went away (disconnect, or its deadline expired while
    /// it waited): its ticket's [`CancelToken`] was tripped; reap every
    /// queued job whose token is set. In-flight cancelled jobs resolve
    /// at their `Done`.
    CancelSweep,
    /// Apply an edge-delta batch to a resident graph (durable: the batch
    /// hits the graph's delta log, fsync'd, before the swap).
    Mutate {
        /// Graph to mutate.
        graph_id: String,
        /// The additions or removals.
        batch: DeltaBatch,
        /// Result + stats snapshot.
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
    },
    /// Fold a graph's delta overlay into a fresh CSR as a new epoch. The
    /// rewrite runs on a background thread against a pinned snapshot;
    /// in-flight jobs keep their epoch and drain undisturbed.
    Compact {
        /// Graph to compact.
        graph_id: String,
        /// Answered when the compaction commits (or fails).
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
    },
    /// A background compaction rewrite finished; commit or abandon it.
    FinishCompact {
        /// The pinned snapshot + destination from `begin_compact`.
        ticket: CompactTicket,
        /// Whether the CSR rewrite itself succeeded.
        result: Result<(), ServeError>,
        /// The original requester, answered after the commit.
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
    },
    /// A runner finished (successfully or not); always sent, even when
    /// the job panicked, so runner capacity can never leak.
    Done {
        /// Which runner is idle again.
        runner: usize,
        /// The job's ticket (reply channel still unsent).
        ticket: JobTicket,
        /// Epoch of the graph the job ran against, for the cache key.
        epoch: u64,
        /// Delta sequence within the epoch, for the cache key.
        delta_seq: u64,
        /// What happened.
        result: Result<JobOutcome, ServeError>,
    },
}

/// A queued job with its pre-resolved graph (resolving at submit keeps
/// `unknown_graph` synchronous and pins the epoch the job will run — and
/// be cached — against).
struct QueuedJob {
    ticket: JobTicket,
    graph: Arc<GraphSnapshot>,
    epoch: u64,
    delta_seq: u64,
}

/// One tenant's queues, quota ledger and counters. Created on first
/// contact and kept for the life of the process (counters outlive the
/// queues so `stats` can report on idle tenants).
struct TenantState {
    /// DRR weight (share of runner hand-outs relative to other tenants).
    weight: u32,
    /// DRR deficit: dispatch credit accumulated on each ring pass. One
    /// job costs one credit, so over time a weight-4 tenant dispatches
    /// four jobs for every one a weight-1 tenant does.
    deficit: u64,
    queue_high: VecDeque<QueuedJob>,
    queue_normal: VecDeque<QueuedJob>,
    /// Jobs occupying runners right now.
    inflight: usize,
    /// Scratch bytes charged to queued + running jobs.
    scratch_bytes: u64,
    submitted: u64,
    completed: u64,
    shed_quota: u64,
    cancelled: u64,
}

impl TenantState {
    fn new(weight: u32) -> TenantState {
        TenantState {
            weight,
            deficit: 0,
            queue_high: VecDeque::new(),
            queue_normal: VecDeque::new(),
            inflight: 0,
            scratch_bytes: 0,
            submitted: 0,
            completed: 0,
            shed_quota: 0,
            cancelled: 0,
        }
    }

    fn queued(&self) -> usize {
        self.queue_high.len() + self.queue_normal.len()
    }

    fn pop(&mut self) -> Option<QueuedJob> {
        self.queue_high
            .pop_front()
            .or_else(|| self.queue_normal.pop_front())
    }
}

/// What an idempotency key currently maps to.
enum IdemState {
    /// The keyed job is queued or running; resubmissions of the key park
    /// their reply channels here and are all answered when it resolves.
    InFlight { waiters: Vec<Sender<SubmitReply>> },
    /// The keyed job committed; resubmissions resolve through the result
    /// cache under this key (and fall back to a fresh run if the entry
    /// was evicted).
    Completed { key: CacheKey },
}

/// The scheduler actor.
pub struct Scheduler {
    config: ServeConfig,
    registry: GraphRegistry,
    cache: ResultCache,
    journal: Option<JobJournal>,
    idem: HashMap<String, IdemState>,
    /// Incomplete journaled jobs awaiting replay, built during recovery
    /// and enqueued in [`Actor::started`] once runners exist.
    replay: Vec<JobTicket>,
    /// Graphs with a compaction rewrite in flight. Mutations and further
    /// compactions of these are refused (`server_busy`) until the rewrite
    /// commits, so the pinned snapshot stays the epoch's last word.
    compacting: HashSet<String>,
    next_job_id: u64,
    /// Per-tenant queues and ledgers, keyed by tenant id.
    tenants: HashMap<String, TenantState>,
    /// The DRR ring: tenant ids with queued work, visited in order.
    /// Invariant outside `drain_queue`: a tenant is in the ring iff its
    /// queues are non-empty, and appears exactly once.
    rr: VecDeque<String>,
    runners: Vec<Addr<Runner>>,
    idle: Vec<usize>,
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_rejected: u64,
    jobs_deadline: u64,
    jobs_failed: u64,
    jobs_replayed: u64,
    idempotent_hits: u64,
    conns_shed: u64,
    scratch_reclaimed_bytes: u64,
    jobs_quota_shed: u64,
    jobs_cancelled: u64,
    auto_compactions: u64,
}

/// A reply channel nobody listens on, for replayed tickets: the client
/// that submitted the original job is gone, so the result only needs to
/// reach the cache and the idempotency map.
fn dead_reply() -> Sender<SubmitReply> {
    crossbeam_channel::bounded(1).0
}

impl Scheduler {
    /// Build a scheduler for `config`. With durability on this is where
    /// crash recovery happens: scratch sweep, registry/cache restore,
    /// journal replay and compaction — all before the listener accepts a
    /// single connection. Every step is best-effort: a damaged artifact
    /// costs restored state (reported on stderr), never the boot.
    /// Runners are spawned — and replayed jobs enqueued — in
    /// [`Actor::started`], once the scheduler has an address.
    pub fn new(config: ServeConfig) -> Self {
        let mut scratch_reclaimed_bytes = 0;
        let mut journal = None;
        let mut idem = HashMap::new();
        let mut replay = Vec::new();
        let mut next_job_id = 1;
        let mut boot_reaped = 0u64;

        let (registry, mut cache) = if config.durable {
            scratch_reclaimed_bytes = sweep_scratch_dirs(&config.work_dir);
            let (registry, restored) =
                GraphRegistry::open(config.memory_budget_bytes, config.manifest_path());
            if restored > 0 {
                eprintln!("gpsa-serve: restored {restored} graph(s) from the manifest");
            }
            let cache = ResultCache::open(config.cache_capacity, config.cache_spill_dir());
            (registry, cache)
        } else {
            (
                GraphRegistry::new(config.memory_budget_bytes),
                ResultCache::new(config.cache_capacity),
            )
        };
        // Entries for graphs that vanished or changed on disk while the
        // server was down — or whose epoch/delta position moved — must
        // not be served.
        cache.retain_valid(&registry.versions());
        #[cfg(feature = "chaos")]
        let registry = match &config.fault_plan {
            Some(plan) => {
                let mut r = registry;
                r.set_fault_plan(plan.clone());
                r
            }
            None => registry,
        };

        if config.durable {
            match JobJournal::open(&config.journal_path()) {
                Ok((mut j, records)) => {
                    let analysis = analyze(&records);
                    next_job_id = analysis.max_job_id + 1;
                    for (key, cache_key) in analysis.completed_keys {
                        idem.insert(key, IdemState::Completed { key: cache_key });
                    }
                    let mut expired: Vec<u64> = Vec::new();
                    for rec in &analysis.incomplete {
                        let JournalRecord::Submitted {
                            job_id,
                            key,
                            graph_id,
                            algorithm,
                            priority,
                            tenant,
                            at_ms,
                        } = rec
                        else {
                            continue;
                        };
                        // A keyed job older than the idempotency TTL has no
                        // client left that could ever resubmit its key: reap
                        // it as failed rather than replaying it against a
                        // dead reply sender.
                        if let (Some(ttl), Some(_)) = (config.idem_key_ttl, key) {
                            let age_ms = now_ms().saturating_sub(*at_ms);
                            if *at_ms > 0 && age_ms > ttl.as_millis() as u64 {
                                expired.push(*job_id);
                                continue;
                            }
                        }
                        if let Some(k) = key {
                            idem.insert(
                                k.clone(),
                                IdemState::InFlight {
                                    waiters: Vec::new(),
                                },
                            );
                        }
                        replay.push(JobTicket {
                            job_id: *job_id,
                            spec: JobSpec {
                                graph_id: graph_id.clone(),
                                algorithm: *algorithm,
                                priority: *priority,
                                // The original deadline died with the
                                // original client; the replay runs for the
                                // journal's sake, unbudgeted.
                                deadline: None,
                                idempotency_key: key.clone(),
                                tenant: tenant.clone(),
                            },
                            submitted: Instant::now(),
                            timer: Timer::start(),
                            reply: dead_reply(),
                            cancel: CancelToken::new(),
                            scratch_bytes: 0,
                        });
                    }
                    if let Err(e) = j.compact(&analysis.keep) {
                        eprintln!("gpsa-serve: journal compaction failed: {e}");
                    }
                    for job_id in expired {
                        boot_reaped += 1;
                        if let Err(e) = j.append(&JournalRecord::Failed {
                            job_id,
                            reason: Some("idempotency key expired".to_string()),
                        }) {
                            eprintln!("gpsa-serve: journal append failed: {e}");
                        }
                    }
                    #[cfg(feature = "chaos")]
                    if let Some(plan) = &config.fault_plan {
                        j.set_fault_plan(plan.clone());
                    }
                    journal = Some(j);
                }
                Err(e) => {
                    eprintln!(
                        "gpsa-serve: cannot open job journal {}: {e}; running without one",
                        config.journal_path().display()
                    );
                }
            }
        }

        Scheduler {
            config,
            registry,
            cache,
            journal,
            idem,
            replay,
            compacting: HashSet::new(),
            next_job_id,
            tenants: HashMap::new(),
            rr: VecDeque::new(),
            runners: Vec::new(),
            idle: Vec::new(),
            jobs_submitted: 0,
            jobs_completed: 0,
            jobs_rejected: 0,
            jobs_deadline: 0,
            jobs_failed: 0,
            jobs_replayed: 0,
            idempotent_hits: 0,
            conns_shed: 0,
            scratch_reclaimed_bytes,
            jobs_quota_shed: 0,
            jobs_cancelled: boot_reaped,
            auto_compactions: 0,
        }
    }

    /// Append one record to the journal (fsync'd), if one is attached.
    fn journal_append(&mut self, rec: &JournalRecord) {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.append(rec) {
                eprintln!("gpsa-serve: journal append failed: {e}");
            }
        }
    }

    /// The tenant's state, created on first contact with its configured
    /// weight.
    fn tenant_entry(&mut self, tenant: &str) -> &mut TenantState {
        if !self.tenants.contains_key(tenant) {
            let weight = self.config.tenant_weight(tenant);
            self.tenants
                .insert(tenant.to_string(), TenantState::new(weight));
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }

    /// Queue a job on its tenant, maintaining the ring invariant.
    fn enqueue_tenant(&mut self, job: QueuedJob) {
        let tenant = job.ticket.spec.tenant.clone();
        let t = self.tenant_entry(&tenant);
        let was_empty = t.queued() == 0;
        match job.ticket.spec.priority {
            Priority::High => t.queue_high.push_back(job),
            Priority::Normal => t.queue_normal.push_back(job),
        }
        if was_empty {
            self.rr.push_back(tenant);
        }
    }

    /// Release a terminal ticket's tenant accounting. `ran` says whether
    /// it occupied a runner (as opposed to dying in the queue).
    fn release_tenant(&mut self, ticket: &JobTicket, ran: bool) {
        let t = self.tenant_entry(&ticket.spec.tenant);
        if ran {
            t.inflight = t.inflight.saturating_sub(1);
        }
        t.scratch_bytes = t.scratch_bytes.saturating_sub(ticket.scratch_bytes);
    }

    fn queue_depth(&self) -> usize {
        self.tenants.values().map(TenantState::queued).sum()
    }

    fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses) = self.cache.counters();
        let mut tenants: Vec<TenantStats> = self
            .tenants
            .iter()
            .map(|(id, t)| TenantStats {
                tenant: id.clone(),
                weight: t.weight as u64,
                queued: t.queued() as u64,
                running: t.inflight as u64,
                scratch_bytes: t.scratch_bytes,
                submitted: t.submitted,
                completed: t.completed,
                shed_quota: t.shed_quota,
                cancelled: t.cancelled,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServerStats {
            jobs_submitted: self.jobs_submitted,
            jobs_completed: self.jobs_completed,
            jobs_rejected: self.jobs_rejected,
            jobs_deadline: self.jobs_deadline,
            jobs_failed: self.jobs_failed,
            cache_hits,
            cache_misses,
            cache_len: self.cache.len() as u64,
            queue_depth: self.queue_depth() as u64,
            running: (self.runners.len() - self.idle.len()) as u64,
            max_concurrent_jobs: self.config.max_concurrent_jobs as u64,
            graphs_resident: self.registry.len() as u64,
            resident_bytes: self.registry.resident_bytes(),
            jobs_replayed: self.jobs_replayed,
            idempotent_hits: self.idempotent_hits,
            conns_shed: self.conns_shed,
            scratch_reclaimed_bytes: self.scratch_reclaimed_bytes,
            jobs_quota_shed: self.jobs_quota_shed,
            jobs_cancelled: self.jobs_cancelled,
            auto_compactions: self.auto_compactions,
            tenants,
        }
    }

    fn cache_key(&self, ticket: &JobTicket, epoch: u64, delta_seq: u64) -> CacheKey {
        CacheKey {
            graph_id: ticket.spec.graph_id.clone(),
            algorithm: ticket.spec.algorithm.name().to_string(),
            params: ticket.spec.algorithm.canonical_params(),
            epoch,
            delta_seq,
        }
    }

    fn reply_err(&mut self, ticket: &JobTicket, err: ServeError) {
        match &err {
            ServeError::ServerBusy(_) => self.jobs_rejected += 1,
            ServeError::DeadlineExceeded(_) => self.jobs_deadline += 1,
            ServeError::QuotaExceeded(_) => {
                self.jobs_quota_shed += 1;
                self.tenant_entry(&ticket.spec.tenant).shed_quota += 1;
            }
            ServeError::Cancelled(_) => {
                self.jobs_cancelled += 1;
                self.tenant_entry(&ticket.spec.tenant).cancelled += 1;
            }
            _ => self.jobs_failed += 1,
        }
        let _ = ticket.reply.send((Err(err), self.stats()));
    }

    fn reply_hit(&mut self, ticket: &JobTicket, outcome: Arc<JobOutcome>) {
        let stats = self.stats();
        let resp = JobResponse {
            job_id: ticket.job_id,
            cache_hit: true,
            outcome,
            queue_wait: Duration::ZERO,
            run_time: Duration::ZERO,
            stats: stats.clone(),
        };
        let _ = ticket.reply.send((Ok(resp), stats));
    }

    fn dispatch(&mut self, job: QueuedJob) {
        let runner = self.idle.pop().expect("dispatch without an idle runner");
        self.tenant_entry(&job.ticket.spec.tenant).inflight += 1;
        self.journal_append(&JournalRecord::Started {
            job_id: job.ticket.job_id,
        });
        // Send only fails during system shutdown, when no reply matters.
        let _ = self.runners[runner].send(RunJob {
            ticket: job.ticket,
            graph: job.graph,
            epoch: job.epoch,
            delta_seq: job.delta_seq,
        });
    }

    /// Hand queued jobs to idle runners by deficit-weighted round-robin
    /// over the tenants with queued work. Each ring visit credits the
    /// tenant its weight in dispatch budget; one job costs one credit,
    /// so over time a weight-4 tenant is handed four runners for every
    /// one a weight-1 tenant gets — regardless of how deep anyone's
    /// queue is. The loop ends when runners run out, the ring empties,
    /// or a full barren pass shows every remaining tenant blocked at
    /// its in-flight cap.
    fn drain_queue(&mut self) {
        let mut barren = 0;
        while !self.idle.is_empty() && !self.rr.is_empty() && barren < self.rr.len() {
            let tid = self.rr.pop_front().expect("ring checked non-empty");
            let dispatched = self.drain_tenant(&tid);
            let t = self.tenant_entry(&tid);
            if t.queued() == 0 {
                // Leaves the ring; deficit doesn't accrue while idle.
                t.deficit = 0;
            } else {
                self.rr.push_back(tid);
            }
            if dispatched {
                barren = 0;
            } else {
                barren += 1;
            }
        }
    }

    /// One DRR visit: credit the quantum (capped at the queue depth so
    /// an in-flight-capped tenant can't hoard credit for a later
    /// burst), then dispatch while credit, queued work, idle runners and
    /// the tenant's in-flight allowance all last. Jobs found cancelled
    /// or deadline-expired at the pop are reaped at no credit cost.
    /// Returns whether anything was dispatched.
    fn drain_tenant(&mut self, tid: &str) -> bool {
        {
            let t = self.tenant_entry(tid);
            let quantum = t.weight as u64;
            t.deficit = (t.deficit + quantum).min(t.queued() as u64);
        }
        let mut dispatched = false;
        let max_inflight = self.config.tenant_max_inflight;
        loop {
            if self.idle.is_empty() {
                return dispatched;
            }
            let t = self.tenant_entry(tid);
            if t.deficit == 0 || t.inflight >= max_inflight {
                return dispatched;
            }
            let Some(job) = t.pop() else {
                return dispatched;
            };
            if job.ticket.cancel.is_cancelled() {
                self.release_tenant(&job.ticket, false);
                self.resolve_failure(
                    &job.ticket,
                    ServeError::Cancelled(format!(
                        "job {} was cancelled while queued",
                        job.ticket.job_id
                    )),
                );
                continue;
            }
            if job.ticket.remaining() == Some(Duration::ZERO) {
                let wait = job.ticket.submitted.elapsed();
                self.release_tenant(&job.ticket, false);
                self.resolve_failure(
                    &job.ticket,
                    ServeError::DeadlineExceeded(format!(
                        "job {} expired after {wait:?} in the queue",
                        job.ticket.job_id
                    )),
                );
                continue;
            }
            self.tenant_entry(tid).deficit -= 1;
            dispatched = true;
            self.dispatch(job);
        }
    }

    /// Reap every queued job whose cancel token is set (the sweep a
    /// [`SchedulerMsg::CancelSweep`] asks for), then restore the ring
    /// invariant and hand any freed budget out again.
    fn cancel_sweep(&mut self) {
        let mut reaped: Vec<QueuedJob> = Vec::new();
        for t in self.tenants.values_mut() {
            for q in [&mut t.queue_high, &mut t.queue_normal] {
                let mut keep = VecDeque::with_capacity(q.len());
                for job in q.drain(..) {
                    if job.ticket.cancel.is_cancelled() {
                        reaped.push(job);
                    } else {
                        keep.push_back(job);
                    }
                }
                *q = keep;
            }
        }
        if reaped.is_empty() {
            return;
        }
        let tenants = &self.tenants;
        self.rr
            .retain(|tid| tenants.get(tid).map(|t| t.queued() > 0).unwrap_or(false));
        for job in reaped {
            self.release_tenant(&job.ticket, false);
            self.resolve_failure(
                &job.ticket,
                ServeError::Cancelled(format!(
                    "job {} was cancelled while queued",
                    job.ticket.job_id
                )),
            );
        }
        self.drain_queue();
    }

    /// Answer a keyed submission from the idempotency map, if it can be.
    /// `true` means the ticket was consumed (parked or answered).
    fn try_idempotent(&mut self, ticket: &JobTicket) -> bool {
        let Some(k) = ticket.spec.idempotency_key.as_deref() else {
            return false;
        };
        match self.idem.get_mut(k) {
            Some(IdemState::InFlight { waiters }) => {
                // Same logical job, already on its way: park the reply.
                waiters.push(ticket.reply.clone());
                self.idempotent_hits += 1;
                true
            }
            Some(IdemState::Completed { key }) => {
                let key = key.clone();
                match self.cache.get(&key) {
                    Some(outcome) => {
                        self.idempotent_hits += 1;
                        self.reply_hit(ticket, outcome);
                        true
                    }
                    // Committed but evicted since: the key's result is
                    // recomputable (deterministic), so fall through to a
                    // fresh run that will re-complete the key.
                    None => false,
                }
            }
            None => false,
        }
    }

    fn handle_submit(&mut self, mut ticket: JobTicket) {
        if self.try_idempotent(&ticket) {
            return;
        }
        let (graph, epoch, delta_seq) = match self.registry.get(&ticket.spec.graph_id) {
            Some(entry) => (entry.snapshot.clone(), entry.epoch, entry.delta_seq()),
            None => {
                let id = ticket.spec.graph_id.clone();
                self.reply_err(
                    &ticket,
                    ServeError::UnknownGraph(format!("graph {id:?} is not registered")),
                );
                return;
            }
        };
        let key = self.cache_key(&ticket, epoch, delta_seq);
        if let Some(outcome) = self.cache.get(&key) {
            if let Some(k) = &ticket.spec.idempotency_key {
                self.idem
                    .insert(k.clone(), IdemState::Completed { key: key.clone() });
            }
            self.reply_hit(&ticket, outcome);
            return;
        }
        // Tenant admission: the flooding tenant's excess is shed with
        // `quota_exceeded` *before* it can crowd the shared queue, so
        // everyone else never sees `server_busy` on its account. Scratch
        // is charged up front (4 bytes per vertex — the job's value
        // file) and released when the job resolves.
        let tenant = ticket.spec.tenant.clone();
        let scratch = graph.n_vertices() as u64 * 4;
        let (max_queued, budget) = (
            self.config.tenant_max_queued,
            self.config.tenant_scratch_budget_bytes,
        );
        let t = self.tenant_entry(&tenant);
        if t.queued() >= max_queued {
            let depth = t.queued();
            self.reply_err(
                &ticket,
                ServeError::QuotaExceeded(format!(
                    "tenant {tenant:?} has {depth} jobs queued (cap {max_queued}); retry later"
                )),
            );
            return;
        }
        if t.scratch_bytes.saturating_add(scratch) > budget {
            let used = t.scratch_bytes;
            self.reply_err(
                &ticket,
                ServeError::QuotaExceeded(format!(
                    "tenant {tenant:?} scratch budget exhausted \
                     ({used}+{scratch} of {budget} bytes); retry later"
                )),
            );
            return;
        }
        // Global admission: only genuine whole-server saturation refuses.
        if self.idle.is_empty() && self.queue_depth() >= self.config.queue_capacity {
            let (depth, cap) = (self.queue_depth(), self.config.queue_capacity);
            self.reply_err(
                &ticket,
                ServeError::ServerBusy(format!(
                    "admission queue is full ({depth}/{cap} waiting, all \
                     {} runners busy); retry later",
                    self.runners.len()
                )),
            );
            return;
        }
        ticket.job_id = self.next_job_id;
        self.next_job_id += 1;
        self.jobs_submitted += 1;
        ticket.scratch_bytes = scratch;
        {
            let t = self.tenant_entry(&tenant);
            t.submitted += 1;
            t.scratch_bytes += scratch;
        }
        self.journal_append(&JournalRecord::Submitted {
            job_id: ticket.job_id,
            key: ticket.spec.idempotency_key.clone(),
            graph_id: ticket.spec.graph_id.clone(),
            algorithm: ticket.spec.algorithm,
            priority: ticket.spec.priority,
            tenant: tenant.clone(),
            at_ms: now_ms(),
        });
        if let Some(k) = &ticket.spec.idempotency_key {
            self.idem.insert(
                k.clone(),
                IdemState::InFlight {
                    waiters: Vec::new(),
                },
            );
        }
        self.enqueue_tenant(QueuedJob {
            ticket,
            graph,
            epoch,
            delta_seq,
        });
        self.drain_queue();
    }

    /// Resolve an admitted (journaled) job as failed: journal the terminal
    /// record, fail any parked resubmissions of its key, answer the
    /// submitter.
    fn resolve_failure(&mut self, ticket: &JobTicket, err: ServeError) {
        self.journal_append(&JournalRecord::Failed {
            job_id: ticket.job_id,
            reason: Some(err.code().to_string()),
        });
        if let Some(k) = &ticket.spec.idempotency_key {
            // The key did not complete: forget it so a later resubmission
            // gets a fresh attempt rather than a parked forever-wait.
            if let Some(IdemState::InFlight { waiters }) = self.idem.remove(k) {
                for w in waiters {
                    let _ = w.send((Err(err.clone()), self.stats()));
                }
            }
        }
        self.reply_err(ticket, err);
    }

    fn handle_done(
        &mut self,
        runner: usize,
        ticket: JobTicket,
        epoch: u64,
        delta_seq: u64,
        result: Result<JobOutcome, ServeError>,
    ) {
        self.idle.push(runner);
        self.release_tenant(&ticket, true);
        // A cancelled job's submitter is gone. A failure is resolved as
        // cancelled (nobody hears it either way); a *successful* result
        // is still committed when resubmissions of its idempotency key
        // are parked waiting — the work is done and they want it — and
        // dropped as cancelled otherwise.
        if ticket.cancel.is_cancelled() {
            let has_waiters = ticket.spec.idempotency_key.as_deref().is_some_and(|k| {
                matches!(self.idem.get(k), Some(IdemState::InFlight { waiters }) if !waiters.is_empty())
            });
            if result.is_err() || !has_waiters {
                self.resolve_failure(
                    &ticket,
                    ServeError::Cancelled(format!(
                        "job {} was cancelled while running",
                        ticket.job_id
                    )),
                );
                self.drain_queue();
                return;
            }
        }
        match result {
            Ok(outcome) => {
                self.journal_append(&JournalRecord::Committed {
                    job_id: ticket.job_id,
                    epoch,
                    delta_seq,
                });
                self.jobs_completed += 1;
                self.tenant_entry(&ticket.spec.tenant).completed += 1;
                let outcome = Arc::new(outcome);
                let key = self.cache_key(&ticket, epoch, delta_seq);
                self.cache.put(key.clone(), outcome.clone());
                let mut waiters = Vec::new();
                if let Some(k) = &ticket.spec.idempotency_key {
                    if let Some(IdemState::InFlight { waiters: w }) =
                        self.idem.insert(k.clone(), IdemState::Completed { key })
                    {
                        waiters = w;
                    }
                }
                let queue_wait = ticket.timer.get("queue_wait").unwrap_or(Duration::ZERO);
                let run_time = ticket.timer.get("run").unwrap_or(Duration::ZERO);
                let stats = self.stats();
                let resp = JobResponse {
                    job_id: ticket.job_id,
                    cache_hit: false,
                    outcome,
                    queue_wait,
                    run_time,
                    stats: stats.clone(),
                };
                for w in waiters {
                    self.idempotent_hits += 1;
                    let _ = w.send((Ok(resp.clone()), stats.clone()));
                }
                let _ = ticket.reply.send((Ok(resp), stats));
            }
            Err(err) => self.resolve_failure(&ticket, err),
        }
        self.drain_queue();
    }

    /// Apply a delta batch: refuse while the graph is compacting (the
    /// pinned snapshot must stay the epoch's last word), otherwise append
    /// to the delta log (fsync'd), swap the snapshot, and journal the new
    /// version as a watermark.
    fn handle_mutate(
        &mut self,
        graph_id: &str,
        batch: &DeltaBatch,
    ) -> Result<GraphInfo, ServeError> {
        if self.compacting.contains(graph_id) {
            return Err(ServeError::ServerBusy(format!(
                "graph {graph_id:?} is compacting; retry the mutation shortly"
            )));
        }
        let entry = self.registry.mutate(graph_id, batch)?;
        self.journal_append(&JournalRecord::Mutated {
            graph_id: graph_id.to_string(),
            epoch: entry.epoch,
            delta_seq: entry.delta_seq(),
        });
        Ok(graph_info(graph_id, &entry))
    }

    /// Whether `graph_id`'s delta churn (overlay edges added + removed,
    /// relative to the base CSR) has crossed the configured
    /// auto-compaction threshold.
    fn wants_auto_compact(&self, graph_id: &str) -> bool {
        let ratio = self.config.auto_compact_ratio;
        if ratio <= 0.0 || self.compacting.contains(graph_id) {
            return false;
        }
        let Some(entry) = self.registry.get(graph_id) else {
            return false;
        };
        let overlay = entry.snapshot.overlay();
        let churn = (overlay.added_edges() + overlay.removed_edges()) as f64;
        let base = entry.snapshot.base().n_edges().max(1) as f64;
        churn / base >= ratio
    }

    /// Begin a background compaction rewrite for `graph_id`, answering
    /// `reply` when it commits (or fails). Shared by the wire `compact`
    /// op and the auto-compaction trigger (which listens on a dead
    /// reply — the commit lands via `FinishCompact` either way).
    fn start_compact(
        &mut self,
        graph_id: String,
        reply: Sender<(Result<GraphInfo, ServeError>, ServerStats)>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if self.compacting.contains(&graph_id) {
            let err = ServeError::ServerBusy(format!("graph {graph_id:?} is already compacting"));
            let _ = reply.send((Err(err), self.stats()));
            return;
        }
        match self.registry.begin_compact(&graph_id) {
            Ok(ticket) => {
                self.compacting.insert(graph_id);
                // The CSR rewrite is pure I/O over a pinned snapshot:
                // run it off-actor so the scheduler (and every runner)
                // stays responsive, then commit via our own mailbox.
                let addr = ctx.addr();
                std::thread::spawn(move || {
                    let result = ticket
                        .snapshot
                        .compact_to(&ticket.dest)
                        .map_err(|e| ServeError::Engine(format!("compaction failed: {e}")));
                    let _ = addr.send(SchedulerMsg::FinishCompact {
                        ticket,
                        result,
                        reply,
                    });
                });
            }
            Err(e) => {
                let _ = reply.send((Err(e), self.stats()));
            }
        }
    }

    /// Commit (or abandon) a finished background compaction rewrite.
    fn handle_finish_compact(
        &mut self,
        ticket: CompactTicket,
        result: Result<(), ServeError>,
    ) -> Result<GraphInfo, ServeError> {
        self.compacting.remove(&ticket.graph_id);
        if let Err(e) = result {
            // The rewrite itself failed; the registry was never touched.
            // Drop the partial output and keep serving the old epoch.
            let _ = std::fs::remove_file(&ticket.dest);
            return Err(e);
        }
        let entry = self.registry.finish_compact(&ticket)?;
        // The epoch moved: every cached result for this graph is stale.
        self.cache.purge_graph(&ticket.graph_id);
        self.journal_append(&JournalRecord::Mutated {
            graph_id: ticket.graph_id.clone(),
            epoch: entry.epoch,
            delta_seq: entry.delta_seq(),
        });
        Ok(graph_info(&ticket.graph_id, &entry))
    }
}

/// Build the wire-facing row for a registry entry.
fn graph_info(graph_id: &str, entry: &GraphEntry) -> GraphInfo {
    GraphInfo {
        graph_id: graph_id.to_string(),
        epoch: entry.epoch,
        delta_seq: entry.delta_seq(),
        n_vertices: entry.snapshot.n_vertices(),
        n_edges: entry.snapshot.n_edges(),
        bytes: entry.snapshot.file_bytes() as u64,
    }
}

/// What one pass over the recovered journal yields.
struct Analysis {
    /// Highest job id ever journaled (id assignment resumes above it).
    max_job_id: u64,
    /// `Submitted` records of jobs with no terminal record, in journal
    /// order — the replay set.
    incomplete: Vec<JournalRecord>,
    /// `idempotency key → cache key` for committed keyed jobs.
    completed_keys: Vec<(String, CacheKey)>,
    /// Records the compacted journal must retain: the incomplete
    /// submissions plus the `Submitted`/`Committed` pairs of keyed jobs
    /// (they back the idempotency map across further restarts).
    keep: Vec<JournalRecord>,
}

fn analyze(records: &[JournalRecord]) -> Analysis {
    let mut max_job_id = 0;
    let mut submitted: HashMap<u64, &JournalRecord> = HashMap::new();
    // job_id → (epoch, delta_seq)
    let mut committed: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut failed: Vec<u64> = Vec::new();
    let mut order: Vec<u64> = Vec::new();
    for rec in records {
        max_job_id = max_job_id.max(rec.job_id());
        match rec {
            JournalRecord::Submitted { job_id, .. } => {
                if submitted.insert(*job_id, rec).is_none() {
                    order.push(*job_id);
                }
            }
            JournalRecord::Started { .. } => {}
            JournalRecord::Committed {
                job_id,
                epoch,
                delta_seq,
            } => {
                committed.insert(*job_id, (*epoch, *delta_seq));
            }
            JournalRecord::Failed { job_id, .. } => failed.push(*job_id),
            // Mutation watermarks carry no job; the registry's own delta
            // log and manifest are the durable source of graph state.
            JournalRecord::Mutated { .. } => {}
        }
    }
    let mut analysis = Analysis {
        max_job_id,
        incomplete: Vec::new(),
        completed_keys: Vec::new(),
        keep: Vec::new(),
    };
    for job_id in order {
        let rec = submitted[&job_id];
        let JournalRecord::Submitted {
            key,
            graph_id,
            algorithm,
            ..
        } = rec
        else {
            unreachable!("submitted map holds only Submitted records");
        };
        if let Some((epoch, delta_seq)) = committed.get(&job_id) {
            if let Some(k) = key {
                analysis.completed_keys.push((
                    k.clone(),
                    CacheKey {
                        graph_id: graph_id.clone(),
                        algorithm: algorithm.name().to_string(),
                        params: algorithm.canonical_params(),
                        epoch: *epoch,
                        delta_seq: *delta_seq,
                    },
                ));
                analysis.keep.push(rec.clone());
                analysis.keep.push(JournalRecord::Committed {
                    job_id,
                    epoch: *epoch,
                    delta_seq: *delta_seq,
                });
            }
        } else if !failed.contains(&job_id) {
            analysis.incomplete.push(rec.clone());
            analysis.keep.push(rec.clone());
        }
    }
    analysis
}

impl Actor for Scheduler {
    type Msg = SchedulerMsg;

    fn started(&mut self, ctx: &mut Ctx<'_, Self>) {
        for id in 0..self.config.max_concurrent_jobs {
            let runner = Runner {
                id,
                scheduler: ctx.addr(),
                config: self.config.clone(),
            };
            self.runners.push(ctx.system().spawn(runner));
            self.idle.push(id);
        }
        // Replay incomplete journaled jobs, oldest first. They bypass the
        // admission queue's capacity (they were admitted before the crash;
        // refusing them now would break the journal's promise) but share
        // runners fairly with new work via the normal queues.
        for ticket in std::mem::take(&mut self.replay) {
            let (graph, epoch, delta_seq) = match self.registry.get(&ticket.spec.graph_id) {
                Some(entry) => (entry.snapshot.clone(), entry.epoch, entry.delta_seq()),
                None => {
                    // The graph did not survive the restart; the job cannot.
                    self.resolve_failure(
                        &ticket,
                        ServeError::UnknownGraph(format!(
                            "graph {:?} was not restored; job {} cannot replay",
                            ticket.spec.graph_id, ticket.job_id
                        )),
                    );
                    continue;
                }
            };
            self.jobs_replayed += 1;
            self.jobs_submitted += 1;
            self.tenant_entry(&ticket.spec.tenant).submitted += 1;
            self.enqueue_tenant(QueuedJob {
                ticket,
                graph,
                epoch,
                delta_seq,
            });
        }
        self.drain_queue();
    }

    fn handle(&mut self, msg: SchedulerMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            SchedulerMsg::Submit(ticket) => self.handle_submit(ticket),
            SchedulerMsg::RegisterGraph {
                graph_id,
                path,
                reply,
            } => {
                let result = self
                    .registry
                    .register(&graph_id, &path)
                    .map(|(entry, bumped)| {
                        if bumped {
                            // Epoch bumped: old cached results can never match
                            // again; reclaim their memory eagerly. (A no-op
                            // re-registration of an unchanged file keeps its
                            // epoch, its overlay, and its cache entries.)
                            self.cache.purge_graph(&graph_id);
                        }
                        graph_info(&graph_id, &entry)
                    });
                let _ = reply.send((result, self.stats()));
            }
            SchedulerMsg::ListGraphs { reply } => {
                let _ = reply.send((self.registry.list(), self.stats()));
            }
            SchedulerMsg::GetStats { reply } => {
                let _ = reply.send(self.stats());
            }
            SchedulerMsg::NoteShed => self.conns_shed += 1,
            SchedulerMsg::CancelSweep => self.cancel_sweep(),
            SchedulerMsg::Mutate {
                graph_id,
                batch,
                reply,
            } => {
                let result = self.handle_mutate(&graph_id, &batch);
                let _ = reply.send((result, self.stats()));
                if self.wants_auto_compact(&graph_id) {
                    self.auto_compactions += 1;
                    // Nobody is waiting on an auto-compaction; the commit
                    // itself arrives through FinishCompact regardless.
                    let dead = crossbeam_channel::bounded(1).0;
                    self.start_compact(graph_id, dead, ctx);
                }
            }
            SchedulerMsg::Compact { graph_id, reply } => self.start_compact(graph_id, reply, ctx),
            SchedulerMsg::FinishCompact {
                ticket,
                result,
                reply,
            } => {
                let result = self.handle_finish_compact(ticket, result);
                let _ = reply.send((result, self.stats()));
            }
            SchedulerMsg::Done {
                runner,
                ticket,
                epoch,
                delta_seq,
                result,
            } => self.handle_done(runner, ticket, epoch, delta_seq, result),
        }
    }
}

/// One job execution slot.
pub struct Runner {
    id: usize,
    scheduler: Addr<Scheduler>,
    config: ServeConfig,
}

/// The runner's only message: execute this job and report back.
pub struct RunJob {
    /// The job (ticket travels to the runner and back; the scheduler
    /// sends the reply).
    pub ticket: JobTicket,
    /// Pre-resolved shared snapshot (base CSR ⊕ delta overlay), pinned
    /// at submit: later mutations or compactions of the same graph id
    /// cannot disturb a running job.
    pub graph: Arc<GraphSnapshot>,
    /// Registry epoch pinned at submit.
    pub epoch: u64,
    /// Delta sequence pinned at submit.
    pub delta_seq: u64,
}

impl Runner {
    /// Execute the job body; every early return is an error the scheduler
    /// will relay.
    fn execute(
        &self,
        ticket: &JobTicket,
        graph: &Arc<GraphSnapshot>,
    ) -> Result<JobOutcome, ServeError> {
        let remaining = ticket.remaining();
        if remaining == Some(Duration::ZERO) {
            return Err(ServeError::DeadlineExceeded(format!(
                "job {} deadline ({:?}) expired before the run started",
                ticket.job_id, ticket.spec.deadline
            )));
        }
        // Job-unique scratch dir: concurrent jobs against the same graph
        // each get a private ValueFile (the shared mmap stays read-only).
        let scratch = self.config.job_scratch_dir(ticket.job_id);
        std::fs::create_dir_all(&scratch)
            .map_err(|e| ServeError::Engine(format!("cannot create scratch dir: {e}")))?;
        let value_file = scratch.join("values.gval");

        let mut econf = self.config.engine.clone();
        econf.work_dir = scratch.clone();
        econf.termination = ticket.spec.algorithm.termination();
        econf.resume = false;
        if let Some(rem) = remaining {
            // Per-job deadline reuses the engine's superstep watchdog: if
            // any superstep (or wedged fleet) outlives the remaining
            // budget, the watchdog fires and, with no retries allowed,
            // surfaces RetriesExhausted — which we map back to the job
            // deadline below.
            econf.superstep_deadline = Some(rem.max(MIN_WATCHDOG));
            econf.max_superstep_retries = 0;
        }
        let had_deadline = remaining.is_some();
        let engine = Engine::new(econf);
        let result = run_job(&engine, graph, &value_file, &ticket.spec.algorithm);
        let _ = std::fs::remove_dir_all(&scratch);
        match result {
            Ok(outcome) => {
                if ticket.remaining() == Some(Duration::ZERO) {
                    return Err(ServeError::DeadlineExceeded(format!(
                        "job {} finished after its deadline",
                        ticket.job_id
                    )));
                }
                Ok(outcome)
            }
            Err(EngineError::RetriesExhausted(causes)) if had_deadline => {
                Err(ServeError::DeadlineExceeded(format!(
                    "job {} hit its deadline mid-run: [{}]",
                    ticket.job_id,
                    causes.join("; ")
                )))
            }
            Err(e) => Err(ServeError::Engine(e.to_string())),
        }
    }
}

impl Actor for Runner {
    type Msg = RunJob;

    fn handle(&mut self, msg: RunJob, _ctx: &mut Ctx<'_, Self>) {
        let RunJob {
            mut ticket,
            graph,
            epoch,
            delta_seq,
        } = msg;
        ticket.timer.lap("queue_wait");
        // catch_unwind so Done is sent even if the engine panics: a lost
        // Done would leak this runner's capacity forever.
        let result = catch_unwind(AssertUnwindSafe(|| self.execute(&ticket, &graph)))
            .unwrap_or_else(|p| {
                let what = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                Err(ServeError::Engine(format!("job runner panicked: {what}")))
            });
        ticket.timer.lap("run");
        let _ = self.scheduler.send(SchedulerMsg::Done {
            runner: self.id,
            ticket,
            epoch,
            delta_seq,
            result,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AlgorithmSpec;

    fn submitted(job_id: u64, key: Option<&str>) -> JournalRecord {
        JournalRecord::Submitted {
            job_id,
            key: key.map(str::to_string),
            graph_id: "g".to_string(),
            algorithm: AlgorithmSpec::Bfs { root: 0 },
            priority: Priority::Normal,
            tenant: crate::job::DEFAULT_TENANT.to_string(),
            at_ms: 0,
        }
    }

    #[test]
    fn analysis_separates_incomplete_from_terminal() {
        let records = vec![
            submitted(1, None),
            JournalRecord::Started { job_id: 1 },
            JournalRecord::Committed {
                job_id: 1,
                epoch: 1,
                delta_seq: 0,
            },
            submitted(2, Some("k2")),
            JournalRecord::Started { job_id: 2 },
            submitted(3, None),
            JournalRecord::Failed {
                job_id: 3,
                reason: None,
            },
            submitted(4, None),
            JournalRecord::Mutated {
                graph_id: "g".to_string(),
                epoch: 1,
                delta_seq: 3,
            },
        ];
        let a = analyze(&records);
        assert_eq!(a.max_job_id, 4);
        let ids: Vec<u64> = a.incomplete.iter().map(JournalRecord::job_id).collect();
        assert_eq!(ids, vec![2, 4], "started-not-committed and submitted-only");
        assert!(a.completed_keys.is_empty(), "job 1 had no key");
        // keep = the two incomplete submissions, nothing else.
        assert_eq!(a.keep.len(), 2);
    }

    #[test]
    fn analysis_maps_committed_keys_to_cache_keys() {
        let records = vec![
            submitted(1, Some("alpha")),
            JournalRecord::Committed {
                job_id: 1,
                epoch: 7,
                delta_seq: 2,
            },
        ];
        let a = analyze(&records);
        assert!(a.incomplete.is_empty());
        assert_eq!(a.completed_keys.len(), 1);
        let (k, ck) = &a.completed_keys[0];
        assert_eq!(k, "alpha");
        assert_eq!(ck.graph_id, "g");
        assert_eq!(ck.algorithm, "bfs");
        assert_eq!(ck.epoch, 7);
        assert_eq!(ck.delta_seq, 2);
        // The keyed pair is retained by compaction so the idempotency map
        // survives a second restart.
        assert_eq!(a.keep.len(), 2);
    }
}
