//! The TCP server: accept loop, per-connection threads, and the wire
//! protocol dispatch.
//!
//! Connection threads do no scheduling themselves — every request is a
//! message to the [`Scheduler`] actor and a blocking wait on a one-shot
//! reply channel, so all policy lives in one place and the protocol layer
//! stays a thin translation between frames and messages.
//!
//! ## Protocol
//!
//! One request frame in, one response frame out, repeated per connection
//! (frames are length-prefixed JSON, see [`crate::wire`]). Requests carry
//! an `"op"` field:
//!
//! | op               | request fields                                             |
//! |------------------|------------------------------------------------------------|
//! | `ping`           | —                                                          |
//! | `register_graph` | `graph_id`, `path`                                         |
//! | `list_graphs`    | —                                                          |
//! | `stats`          | —                                                          |
//! | `submit`         | `graph_id`, `algorithm`, `params`, `priority?`, `deadline_ms?`, `idempotency_key?`, `tenant_id?`, `stream?` |
//! | `add_edges`      | `graph_id`, `edges` (array of `"src:dst"` strings)         |
//! | `remove_edges`   | `graph_id`, `edges` (array of `"src:dst"` strings)         |
//! | `compact`        | `graph_id` (answers once the new epoch commits)            |
//! | `shutdown`       | —                                                          |
//!
//! Every response has `"ok"` and (except `ping`) a `"stats"` counter
//! object; failures carry the stable `"code"` / `"message"` pair from
//! [`ServeError`] plus a `"retriable"` flag for transient failures.
//! Retriable failures additionally carry `"retry_after_ms"`, a back-off
//! hint scaled to the server's current backlog.
//!
//! ## Tenancy and cancellation
//!
//! A submit's `tenant_id` names the tenant it bills against; absent one,
//! the connection's peer address is the tenant, so an anonymous flood
//! from one connection cannot crowd out another. While a submit waits
//! for its result the connection thread polls the socket; a client that
//! disconnects trips the job's [`CancelToken`] and the scheduler reaps
//! the job instead of finishing work nobody will read.
//!
//! ## Streaming results
//!
//! `submit` with `"stream": true` answers with a frame *sequence*
//! instead of one monolithic result frame: a `{"stream":"start"}` header
//! (value type, total count, chunk size), then fixed-size value chunks
//! each carrying a CRC32 over its values' little-endian bytes, then a
//! `{"stream":"end"}` trailer with the run summary and stats. Peak
//! per-frame memory on both sides is bounded by the chunk size however
//! large the graph is; the client re-checks every CRC and the final
//! count, so a torn stream can't silently truncate a result.
//!
//! ## Socket hygiene
//!
//! A connection may idle between frames forever, but once a request frame
//! *starts* arriving it must finish within
//! [`ServeConfig::frame_read_timeout`]: the first length byte is read
//! with no deadline, the rest of the frame under one. A peer that stalls
//! mid-frame is **shed** — best-effort `slow_client` error frame, then
//! close — so a hostile or wedged client pins a connection thread for a
//! bounded time only, and other clients keep being served. Response
//! writes are bounded by [`ServeConfig::write_timeout`] at the OS level.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use actor::{Addr, System};
use crossbeam_channel::bounded;
use gpsa_graph::{DeltaBatch, Edge};
use gpsa_metrics::timer::Timer;

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::job::{AlgorithmSpec, CancelToken, JobResponse, JobSpec, JobTicket, Priority};
use crate::json::Json;
use crate::registry::GraphInfo;
use crate::scheduler::{Scheduler, SchedulerMsg};
use crate::stats::ServerStats;
use crate::wire::{chunk_crc, read_frame_resumed, write_frame};

/// How often a connection thread blocked on a job reply checks whether
/// its client is still there.
const DISCONNECT_POLL: Duration = Duration::from_millis(50);

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Addr<Scheduler>,
    system: System,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Shared state handed to every connection thread.
#[derive(Clone)]
struct Shared {
    scheduler: Addr<Scheduler>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// Boot a server: bind the listener, spawn the scheduler and its runner
/// fleet, and start accepting connections. Returns once the socket is
/// live; use [`ServerHandle::addr`] to learn the bound port.
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    std::fs::create_dir_all(&config.work_dir)?;
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    // One worker per runner (each blocks for a whole engine run) plus one
    // so the scheduler always has a thread to answer on.
    let system = System::builder()
        .workers(config.max_concurrent_jobs + 1)
        .build();
    let scheduler = system.spawn(Scheduler::new(config.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Shared {
        scheduler: scheduler.clone(),
        config,
        shutdown: shutdown.clone(),
        addr,
    };
    let accept_thread = std::thread::Builder::new()
        .name("gpsa-serve-accept".to_string())
        .spawn(move || accept_loop(listener, shared))?;
    Ok(ServerHandle {
        addr,
        scheduler,
        system,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler address, for in-process submission from tests.
    pub fn scheduler(&self) -> Addr<Scheduler> {
        self.scheduler.clone()
    }

    /// Has a `shutdown` request been received (wire op or
    /// [`ServerHandle::shutdown`])? Lets a hosting process poll for the
    /// moment it should tear the handle down.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Stop accepting connections and tear down the actor system.
    /// In-flight connections see closed sockets. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.system.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("gpsa-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, shared));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept error (e.g. EMFILE); keep serving.
            }
        }
    }
}

/// Read-timeout expiries surface as `WouldBlock` (Unix) or `TimedOut`
/// depending on platform; both mean the peer stalled past the deadline.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// What a request handler wants done with the connection afterwards.
enum Action {
    /// Write this frame (through the chaos-aware writer) and continue.
    Respond(Json),
    /// The handler already wrote its frames (streaming path); continue.
    Continue,
    /// Tear the connection down (the peer vanished mid-job).
    Close,
}

fn handle_connection(mut stream: TcpStream, shared: Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    // Submissions that name no tenant bill against the connection itself,
    // so one anonymous flooder can't crowd out other anonymous clients.
    let default_tenant = stream
        .peer_addr()
        .map(|p| format!("conn:{p}"))
        .unwrap_or_else(|_| crate::job::DEFAULT_TENANT.to_string());
    loop {
        // Phase 1: wait for a frame to start, with no deadline — an idle
        // connection held open between requests is fine.
        let _ = stream.set_read_timeout(None);
        let mut first = [0u8; 1];
        let first = loop {
            match stream.read(&mut first) {
                Ok(0) => return, // clean close between frames
                Ok(_) => break first[0],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        };
        // Phase 2: the frame has started; the rest must land within the
        // deadline or this client is shed to free the thread.
        let _ = stream.set_read_timeout(Some(shared.config.frame_read_timeout));
        let req = match read_frame_resumed(&mut stream, first) {
            Ok(req) => req,
            Err(e) if is_timeout(&e) => {
                let _ = shared.scheduler.send(SchedulerMsg::NoteShed);
                let err = ServeError::SlowClient(format!(
                    "request frame stalled past {:?}; connection shed",
                    shared.config.frame_read_timeout
                ));
                let _ = write_frame(&mut stream, &error_frame(&err, None));
                return;
            }
            Err(_) => {
                // Can't resynchronize a broken frame stream; best-effort
                // error frame, then drop the connection.
                let err = ServeError::BadRequest("unreadable frame".to_string());
                let _ = write_frame(&mut stream, &error_frame(&err, None));
                return;
            }
        };
        match handle_request(&req, &shared, &mut stream, &default_tenant) {
            Action::Respond(resp) => {
                if write_response(&mut stream, &resp, &shared).is_err() {
                    return;
                }
            }
            Action::Continue => {}
            Action::Close => return,
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Has the peer closed its end? A non-blocking peek distinguishes a
/// clean EOF (or error) from a merely quiet socket.
fn peer_gone(stream: &TcpStream) -> bool {
    let mut buf = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let gone = match stream.peek(&mut buf) {
        Ok(0) => true,
        Ok(_) => false, // a pipelined request is waiting; very much alive
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Write one response frame, with the chaos plan's scripted network
/// faults injected here (and only here) when the feature is on.
fn write_response(stream: &mut TcpStream, resp: &Json, shared: &Shared) -> io::Result<()> {
    #[cfg(feature = "chaos")]
    if let Some(plan) = &shared.config.fault_plan {
        use crate::fault::ResponseFault;
        use std::io::Write;
        match plan.on_response() {
            ResponseFault::None => {}
            ResponseFault::DropMidFrame => {
                // Announce the full frame, deliver half of it, vanish.
                let body = resp.encode();
                stream.write_all(&(body.len() as u32).to_be_bytes())?;
                stream.write_all(&body.as_bytes()[..body.len() / 2])?;
                stream.flush()?;
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "chaos: connection dropped mid-frame",
                ));
            }
            ResponseFault::Stall(pause) => {
                let body = resp.encode();
                stream.write_all(&(body.len() as u32).to_be_bytes())?;
                stream.write_all(&body.as_bytes()[..body.len() / 2])?;
                stream.flush()?;
                std::thread::sleep(pause);
                stream.write_all(&body.as_bytes()[body.len() / 2..])?;
                return stream.flush();
            }
        }
    }
    let _ = shared; // quiet the unused warning without the chaos feature
    write_frame(stream, resp)
}

/// Render an error response; attaches stats when the caller has them.
/// The `"retriable"` flag mirrors [`ServeError::retriable`] so clients in
/// any language can branch transient-vs-permanent without a code table.
fn error_frame(err: &ServeError, stats: Option<&ServerStats>) -> Json {
    let mut j = Json::obj()
        .set("ok", Json::Bool(false))
        .set("code", Json::str(err.code()))
        .set("message", Json::str(err.message()))
        .set("retriable", Json::Bool(err.retriable()));
    if let Some(s) = stats {
        j = j.set("stats", s.to_json());
        if err.retriable() {
            j = j.set("retry_after_ms", Json::num(retry_after_hint_ms(s)));
        }
    }
    j
}

/// How long a shed client should wait before retrying: scales with the
/// current backlog so a deep queue pushes retries further out rather
/// than inviting an immediate thundering herd.
fn retry_after_hint_ms(stats: &ServerStats) -> u64 {
    (50 + 10 * stats.queue_depth).min(2_000)
}

fn graph_info_json(info: &GraphInfo) -> Json {
    Json::obj()
        .set("graph_id", Json::str(&info.graph_id))
        .set("epoch", Json::num(info.epoch))
        .set("delta_seq", Json::num(info.delta_seq))
        .set("n_vertices", Json::num(info.n_vertices as u64))
        .set("n_edges", Json::num(info.n_edges as u64))
        .set("bytes", Json::num(info.bytes))
}

/// Fetch a stats snapshot for requests that fail before reaching a
/// scheduler path that would carry one (the protocol promises counters
/// in every response).
fn fetch_stats(shared: &Shared) -> Option<ServerStats> {
    let (tx, rx) = bounded(1);
    shared
        .scheduler
        .send(SchedulerMsg::GetStats { reply: tx })
        .ok()?;
    rx.recv().ok()
}

fn handle_request(
    req: &Json,
    shared: &Shared,
    stream: &mut TcpStream,
    default_tenant: &str,
) -> Action {
    let op = req.get("op").and_then(Json::as_str).unwrap_or("");
    Action::Respond(match op {
        "ping" => Json::obj()
            .set("ok", Json::Bool(true))
            .set("pong", Json::Bool(true)),
        "stats" => match fetch_stats(shared) {
            Some(stats) => Json::obj()
                .set("ok", Json::Bool(true))
                .set("stats", stats.to_json()),
            None => error_frame(
                &ServeError::Engine("scheduler unavailable".to_string()),
                None,
            ),
        },
        "register_graph" => handle_register(req, shared),
        "list_graphs" => {
            let (tx, rx) = bounded(1);
            if shared
                .scheduler
                .send(SchedulerMsg::ListGraphs { reply: tx })
                .is_err()
            {
                return Action::Respond(error_frame(
                    &ServeError::Engine("scheduler unavailable".to_string()),
                    None,
                ));
            }
            match rx.recv() {
                Ok((rows, stats)) => Json::obj()
                    .set("ok", Json::Bool(true))
                    .set(
                        "graphs",
                        Json::Arr(rows.iter().map(graph_info_json).collect()),
                    )
                    .set("stats", stats.to_json()),
                Err(_) => error_frame(
                    &ServeError::Engine("scheduler unavailable".to_string()),
                    None,
                ),
            }
        }
        "submit" => return handle_submit(req, shared, stream, default_tenant),
        "add_edges" => handle_mutate(req, shared, false),
        "remove_edges" => handle_mutate(req, shared, true),
        "compact" => handle_compact(req, shared),
        "shutdown" => {
            if !shared.shutdown.swap(true, Ordering::AcqRel) {
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            Json::obj().set("ok", Json::Bool(true))
        }
        other => {
            let err = ServeError::BadRequest(format!("unknown op {other:?}"));
            error_frame(&err, fetch_stats(shared).as_ref())
        }
    })
}

fn handle_register(req: &Json, shared: &Shared) -> Json {
    let Some(graph_id) = req.get("graph_id").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("register_graph needs graph_id".to_string());
        return error_frame(&err, fetch_stats(shared).as_ref());
    };
    let Some(path) = req.get("path").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("register_graph needs path".to_string());
        return error_frame(&err, fetch_stats(shared).as_ref());
    };
    let (tx, rx) = bounded(1);
    let msg = SchedulerMsg::RegisterGraph {
        graph_id: graph_id.to_string(),
        path: path.into(),
        reply: tx,
    };
    if shared.scheduler.send(msg).is_err() {
        return error_frame(
            &ServeError::Engine("scheduler unavailable".to_string()),
            None,
        );
    }
    graph_info_reply(rx)
}

/// Await a `(GraphInfo, stats)` scheduler reply and render it — the
/// shared tail of `register_graph`, `add_edges`, `remove_edges`, and
/// `compact`, which all answer with the graph's (possibly new) registry
/// row.
fn graph_info_reply(
    rx: crossbeam_channel::Receiver<(Result<GraphInfo, ServeError>, ServerStats)>,
) -> Json {
    match rx.recv() {
        Ok((Ok(info), stats)) => graph_info_json(&info)
            .set("ok", Json::Bool(true))
            .set("stats", stats.to_json()),
        Ok((Err(err), stats)) => error_frame(&err, Some(&stats)),
        Err(_) => error_frame(
            &ServeError::Engine("scheduler unavailable".to_string()),
            None,
        ),
    }
}

/// Parse the `edges` field: an array of `"src:dst"` strings.
fn parse_edges(req: &Json) -> Result<Vec<Edge>, ServeError> {
    let Some(rows) = req.get("edges").and_then(Json::as_arr) else {
        return Err(ServeError::BadRequest(
            "mutation needs an `edges` array of \"src:dst\" strings".to_string(),
        ));
    };
    let mut edges = Vec::with_capacity(rows.len());
    for row in rows {
        let s = row.as_str().unwrap_or("");
        let parsed = s
            .split_once(':')
            .and_then(|(u, v)| Some(Edge::new(u.trim().parse().ok()?, v.trim().parse().ok()?)));
        match parsed {
            Some(e) => edges.push(e),
            None => {
                return Err(ServeError::BadRequest(format!(
                    "bad edge {s:?}: expected \"src:dst\" with u32 endpoints"
                )))
            }
        }
    }
    if edges.is_empty() {
        return Err(ServeError::BadRequest(
            "mutation needs at least one edge".to_string(),
        ));
    }
    Ok(edges)
}

fn handle_mutate(req: &Json, shared: &Shared, remove: bool) -> Json {
    let Some(graph_id) = req.get("graph_id").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("mutation needs graph_id".to_string());
        return error_frame(&err, fetch_stats(shared).as_ref());
    };
    let edges = match parse_edges(req) {
        Ok(e) => e,
        Err(err) => return error_frame(&err, fetch_stats(shared).as_ref()),
    };
    let batch = if remove {
        DeltaBatch::Remove(edges)
    } else {
        DeltaBatch::Add(edges)
    };
    let (tx, rx) = bounded(1);
    let msg = SchedulerMsg::Mutate {
        graph_id: graph_id.to_string(),
        batch,
        reply: tx,
    };
    if shared.scheduler.send(msg).is_err() {
        return error_frame(
            &ServeError::Engine("scheduler unavailable".to_string()),
            None,
        );
    }
    graph_info_reply(rx)
}

fn handle_compact(req: &Json, shared: &Shared) -> Json {
    let Some(graph_id) = req.get("graph_id").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("compact needs graph_id".to_string());
        return error_frame(&err, fetch_stats(shared).as_ref());
    };
    let (tx, rx) = bounded(1);
    let msg = SchedulerMsg::Compact {
        graph_id: graph_id.to_string(),
        reply: tx,
    };
    if shared.scheduler.send(msg).is_err() {
        return error_frame(
            &ServeError::Engine("scheduler unavailable".to_string()),
            None,
        );
    }
    graph_info_reply(rx)
}

fn handle_submit(
    req: &Json,
    shared: &Shared,
    stream: &mut TcpStream,
    default_tenant: &str,
) -> Action {
    let Some(graph_id) = req.get("graph_id").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("submit needs graph_id".to_string());
        return Action::Respond(error_frame(&err, fetch_stats(shared).as_ref()));
    };
    let Some(algorithm) = req.get("algorithm").and_then(Json::as_str) else {
        let err = ServeError::BadRequest("submit needs algorithm".to_string());
        return Action::Respond(error_frame(&err, fetch_stats(shared).as_ref()));
    };
    let empty = Json::obj();
    let params = req.get("params").unwrap_or(&empty);
    let alg = match AlgorithmSpec::parse(algorithm, params) {
        Ok(a) => a,
        Err(err) => return Action::Respond(error_frame(&err, fetch_stats(shared).as_ref())),
    };
    let priority = req
        .get("priority")
        .and_then(Json::as_str)
        .map(Priority::parse)
        .unwrap_or_default();
    let deadline = req
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis)
        .or(shared.config.default_deadline);
    let idempotency_key = req
        .get("idempotency_key")
        .and_then(Json::as_str)
        .map(str::to_string);
    let tenant = req
        .get("tenant_id")
        .and_then(Json::as_str)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| default_tenant.to_string());
    let want_stream = req.get("stream").and_then(Json::as_bool).unwrap_or(false);
    let (tx, rx) = bounded(1);
    let cancel = CancelToken::new();
    // job_id 0 is a placeholder: the scheduler assigns real ids (it owns
    // the counter so recovery can resume numbering above the journal).
    let ticket = JobTicket {
        job_id: 0,
        spec: JobSpec {
            graph_id: graph_id.to_string(),
            algorithm: alg,
            priority,
            deadline,
            idempotency_key,
            tenant,
        },
        submitted: Instant::now(),
        timer: Timer::start(),
        reply: tx,
        cancel: cancel.clone(),
        scratch_bytes: 0,
    };
    if shared.scheduler.send(SchedulerMsg::Submit(ticket)).is_err() {
        return Action::Respond(error_frame(
            &ServeError::Engine("scheduler unavailable".to_string()),
            None,
        ));
    }
    // Block for the result, polling the socket: a client that vanishes
    // cancels its job rather than having a runner finish an answer
    // nobody will read.
    let reply = loop {
        match rx.recv_timeout(DISCONNECT_POLL) {
            Ok(reply) => break reply,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                if peer_gone(stream) {
                    cancel.cancel();
                    let _ = shared.scheduler.send(SchedulerMsg::CancelSweep);
                    return Action::Close;
                }
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                return Action::Respond(error_frame(
                    &ServeError::Engine("scheduler dropped the job reply".to_string()),
                    None,
                ));
            }
        }
    };
    match reply {
        (Ok(resp), _stats) => {
            if want_stream {
                match write_stream(stream, &resp, shared) {
                    Ok(()) => Action::Continue,
                    Err(_) => Action::Close,
                }
            } else {
                Action::Respond(resp.to_json())
            }
        }
        (Err(err), stats) => Action::Respond(error_frame(&err, Some(&stats))),
    }
}

/// Stream a job result: a `start` frame, fixed-size CRC'd value chunks,
/// then an `end` frame carrying the run summary. The full value array is
/// never rendered into one JSON body — peak per-frame memory is bounded
/// by [`ServeConfig::stream_chunk_values`] — and every chunk's CRC32
/// (over its values' little-endian bytes) lets the client reject a torn
/// or corrupted stream instead of trusting it.
fn write_stream(stream: &mut TcpStream, resp: &JobResponse, shared: &Shared) -> io::Result<()> {
    let chunk_values = shared.config.stream_chunk_values.max(1);
    let values = &resp.outcome.values_u32;
    let start = Json::obj()
        .set("ok", Json::Bool(true))
        .set("stream", Json::str("start"))
        .set("job_id", Json::num(resp.job_id))
        .set("cache_hit", Json::Bool(resp.cache_hit))
        .set("value_type", Json::str(resp.outcome.value_type.as_str()))
        .set("n_values", Json::num(values.len() as u64))
        .set("chunk_values", Json::num(chunk_values as u64));
    write_frame(stream, &start)?;
    let mut n_chunks = 0u64;
    for (seq, chunk) in values.chunks(chunk_values).enumerate() {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &shared.config.fault_plan {
            if plan.on_stream_chunk() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "chaos: connection dropped mid-stream",
                ));
            }
        }
        let frame = Json::obj()
            .set("ok", Json::Bool(true))
            .set("stream", Json::str("chunk"))
            .set("seq", Json::num(seq as u64))
            .set("offset", Json::num((seq * chunk_values) as u64))
            .set("crc", Json::num(chunk_crc(chunk) as u64))
            .set(
                "values_u32",
                Json::Arr(chunk.iter().map(|v| Json::num(*v as u64)).collect()),
            );
        write_frame(stream, &frame)?;
        n_chunks += 1;
    }
    let end = Json::obj()
        .set("ok", Json::Bool(true))
        .set("stream", Json::str("end"))
        .set("job_id", Json::num(resp.job_id))
        .set("n_chunks", Json::num(n_chunks))
        .set("supersteps", Json::num(resp.outcome.supersteps))
        .set("messages", Json::num(resp.outcome.messages))
        .set("edges_streamed", Json::num(resp.outcome.edges_streamed))
        .set("edges_skipped", Json::num(resp.outcome.edges_skipped))
        .set(
            "mean_frontier_density",
            Json::float(resp.outcome.mean_frontier_density),
        )
        .set(
            "retry_attempts",
            Json::num(resp.outcome.retry_attempts as u64),
        )
        .set(
            "queue_wait_us",
            Json::num(resp.queue_wait.as_micros() as u64),
        )
        .set("run_us", Json::num(resp.run_time.as_micros() as u64))
        .set("stats", resp.stats.to_json());
    write_frame(stream, &end)
}
