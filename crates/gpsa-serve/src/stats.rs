//! Server-wide counters, attached to every wire response.
//!
//! A snapshot is taken by the scheduler (which owns all the underlying
//! state, so no locks or atomics are involved) at the moment it writes a
//! reply; clients therefore always see queue/cache/utilization figures
//! consistent with the response they accompany.

use crate::json::Json;

/// One tenant's slice of the scheduler state, exported by the `stats`
/// wire op (and the `gpsa stats` CLI) so operators can see *who* is
/// loading the server, not just that it is loaded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// Configured DRR weight.
    pub weight: u64,
    /// Jobs waiting in this tenant's queues right now.
    pub queued: u64,
    /// Jobs running on behalf of this tenant right now.
    pub running: u64,
    /// Scratch bytes charged to the tenant (queued + running jobs).
    pub scratch_bytes: u64,
    /// Jobs this tenant ever had admitted.
    pub submitted: u64,
    /// Jobs this tenant had run to completion.
    pub completed: u64,
    /// Submissions refused with `quota_exceeded`.
    pub shed_quota: u64,
    /// Jobs reaped after the submitting client went away.
    pub cancelled: u64,
}

impl TenantStats {
    /// Render one tenant row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("tenant", Json::str(&self.tenant))
            .set("weight", Json::num(self.weight))
            .set("queued", Json::num(self.queued))
            .set("running", Json::num(self.running))
            .set("scratch_bytes", Json::num(self.scratch_bytes))
            .set("submitted", Json::num(self.submitted))
            .set("completed", Json::num(self.completed))
            .set("shed_quota", Json::num(self.shed_quota))
            .set("cancelled", Json::num(self.cancelled))
    }

    /// Parse one tenant row (missing fields read as 0).
    pub fn from_json(j: &Json) -> TenantStats {
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        TenantStats {
            tenant: j
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            weight: u("weight"),
            queued: u("queued"),
            running: u("running"),
            scratch_bytes: u("scratch_bytes"),
            submitted: u("submitted"),
            completed: u("completed"),
            shed_quota: u("shed_quota"),
            cancelled: u("cancelled"),
        }
    }
}

/// One consistent snapshot of the server counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs ever accepted for scheduling (cache hits excluded).
    pub jobs_submitted: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs refused by admission control (`server_busy`).
    pub jobs_rejected: u64,
    /// Jobs torn down for missing their deadline (queued or running).
    pub jobs_deadline: u64,
    /// Jobs that failed in the engine.
    pub jobs_failed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: u64,
    /// Jobs running engine supersteps right now.
    pub running: u64,
    /// The configured concurrency cap.
    pub max_concurrent_jobs: u64,
    /// Graphs resident in the registry.
    pub graphs_resident: u64,
    /// Mapped bytes across resident graphs.
    pub resident_bytes: u64,
    /// Journaled jobs replayed by this process at boot (crash recovery).
    pub jobs_replayed: u64,
    /// Submissions answered by idempotency key (attached to an in-flight
    /// run, or resolved from a committed result without rerunning).
    pub idempotent_hits: u64,
    /// Connections shed for stalling mid-frame past the read deadline.
    pub conns_shed: u64,
    /// Bytes of orphaned job scratch reclaimed by the boot-time sweep.
    pub scratch_reclaimed_bytes: u64,
    /// Submissions refused by a per-tenant quota (`quota_exceeded`).
    pub jobs_quota_shed: u64,
    /// Jobs reaped because their submitter went away (disconnect) or
    /// their idempotency key expired across a restart.
    pub jobs_cancelled: u64,
    /// Compactions the scheduler started on its own authority because a
    /// graph's delta/base edge ratio crossed the configured threshold.
    pub auto_compactions: u64,
    /// Per-tenant breakdown, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
}

impl ServerStats {
    /// Cache hit rate over the lifetime of the server, 0.0 if untouched.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render as the protocol's `"stats"` object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("jobs_submitted", Json::num(self.jobs_submitted))
            .set("jobs_completed", Json::num(self.jobs_completed))
            .set("jobs_rejected", Json::num(self.jobs_rejected))
            .set("jobs_deadline", Json::num(self.jobs_deadline))
            .set("jobs_failed", Json::num(self.jobs_failed))
            .set("cache_hits", Json::num(self.cache_hits))
            .set("cache_misses", Json::num(self.cache_misses))
            .set("cache_len", Json::num(self.cache_len))
            .set("queue_depth", Json::num(self.queue_depth))
            .set("running", Json::num(self.running))
            .set("max_concurrent_jobs", Json::num(self.max_concurrent_jobs))
            .set("graphs_resident", Json::num(self.graphs_resident))
            .set("resident_bytes", Json::num(self.resident_bytes))
            .set("jobs_replayed", Json::num(self.jobs_replayed))
            .set("idempotent_hits", Json::num(self.idempotent_hits))
            .set("conns_shed", Json::num(self.conns_shed))
            .set(
                "scratch_reclaimed_bytes",
                Json::num(self.scratch_reclaimed_bytes),
            )
            .set("jobs_quota_shed", Json::num(self.jobs_quota_shed))
            .set("jobs_cancelled", Json::num(self.jobs_cancelled))
            .set("auto_compactions", Json::num(self.auto_compactions))
            .set(
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantStats::to_json).collect()),
            )
    }

    /// Parse a `"stats"` object (the client-side inverse of
    /// [`ServerStats::to_json`]). Missing fields read as 0.
    pub fn from_json(j: &Json) -> ServerStats {
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        ServerStats {
            jobs_submitted: u("jobs_submitted"),
            jobs_completed: u("jobs_completed"),
            jobs_rejected: u("jobs_rejected"),
            jobs_deadline: u("jobs_deadline"),
            jobs_failed: u("jobs_failed"),
            cache_hits: u("cache_hits"),
            cache_misses: u("cache_misses"),
            cache_len: u("cache_len"),
            queue_depth: u("queue_depth"),
            running: u("running"),
            max_concurrent_jobs: u("max_concurrent_jobs"),
            graphs_resident: u("graphs_resident"),
            resident_bytes: u("resident_bytes"),
            jobs_replayed: u("jobs_replayed"),
            idempotent_hits: u("idempotent_hits"),
            conns_shed: u("conns_shed"),
            scratch_reclaimed_bytes: u("scratch_reclaimed_bytes"),
            jobs_quota_shed: u("jobs_quota_shed"),
            jobs_cancelled: u("jobs_cancelled"),
            auto_compactions: u("auto_compactions"),
            tenants: j
                .get("tenants")
                .and_then(Json::as_arr)
                .map(|rows| rows.iter().map(TenantStats::from_json).collect())
                .unwrap_or_default(),
        }
    }

    /// The row for `tenant`, if the snapshot carries one.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let s = ServerStats {
            jobs_submitted: 9,
            jobs_completed: 7,
            jobs_rejected: 1,
            jobs_deadline: 1,
            jobs_failed: 0,
            cache_hits: 3,
            cache_misses: 6,
            cache_len: 4,
            queue_depth: 2,
            running: 2,
            max_concurrent_jobs: 2,
            graphs_resident: 1,
            resident_bytes: 1 << 20,
            jobs_replayed: 2,
            idempotent_hits: 1,
            conns_shed: 1,
            scratch_reclaimed_bytes: 4096,
            jobs_quota_shed: 3,
            jobs_cancelled: 2,
            auto_compactions: 1,
            tenants: vec![
                TenantStats {
                    tenant: "alpha".to_string(),
                    weight: 4,
                    queued: 2,
                    running: 1,
                    scratch_bytes: 1024,
                    submitted: 6,
                    completed: 3,
                    shed_quota: 3,
                    cancelled: 1,
                },
                TenantStats {
                    tenant: "beta".to_string(),
                    weight: 1,
                    ..TenantStats::default()
                },
            ],
        };
        assert_eq!(ServerStats::from_json(&s.to_json()), s);
        assert!((s.cache_hit_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(ServerStats::default().cache_hit_rate(), 0.0);
        assert_eq!(s.tenant("alpha").unwrap().queued, 2);
        assert!(s.tenant("gamma").is_none());
    }
}
