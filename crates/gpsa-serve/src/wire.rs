//! Length-prefixed JSON framing.
//!
//! Every protocol message is one frame: a 4-byte big-endian length followed
//! by that many bytes of UTF-8 JSON. Framing keeps the stream synchronized
//! without a streaming JSON parser, and the length cap bounds what a
//! misbehaving peer can make the server buffer.
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (BE)  | len bytes of JSON (UTF-8) |
//! +----------------+---------------------------+
//! ```

use std::io::{self, Read, Write};

use crate::json::Json;

/// Largest accepted frame body. A full value array for a 10M-vertex graph
/// (`"4294967295",` per vertex worst case) stays under this.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    let body = msg.encode();
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the protocol cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames); mid-frame EOF and malformed JSON are errors.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame, over the protocol cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let a = Json::obj().set("op", Json::str("ping"));
        let b = Json::Arr(vec![Json::num(1), Json::num(2)]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(a));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("hello world")).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
        // Truncated length prefix, too.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_announcement_is_rejected() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"{}");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
