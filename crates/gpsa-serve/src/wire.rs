//! Length-prefixed JSON framing.
//!
//! Every protocol message is one frame: a 4-byte big-endian length followed
//! by that many bytes of UTF-8 JSON. Framing keeps the stream synchronized
//! without a streaming JSON parser, and the length cap bounds what a
//! misbehaving peer can make the server buffer.
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (BE)  | len bytes of JSON (UTF-8) |
//! +----------------+---------------------------+
//! ```
//!
//! The `*_with_cap` variants take the frame cap as a parameter; the
//! public [`read_frame`] / [`write_frame`] pair fixes it at
//! [`MAX_FRAME_BYTES`]. [`read_frame_resumed`] picks up a frame whose
//! first length byte was already consumed — the server reads that byte
//! with no deadline (a connection idling between requests is fine) and
//! only arms its per-frame read timeout once a frame has started.

use std::io::{self, Read, Write};

use crate::json::Json;

/// Largest accepted frame body. A full value array for a 10M-vertex graph
/// (`"4294967295",` per vertex worst case) stays under this.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// CRC32 over a value chunk's little-endian bytes — the per-chunk
/// integrity check on streamed results, shared by server (stamping) and
/// client (verifying) so the two can never drift.
pub fn chunk_crc(values: &[u32]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    gpsa_graph::framed::crc32(&bytes)
}

/// Write one frame, enforcing `cap` on the body size.
pub fn write_frame_with_cap<W: Write>(w: &mut W, msg: &Json, cap: usize) -> io::Result<()> {
    let body = msg.encode();
    if body.len() > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {cap}-byte protocol cap",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Write one frame under the protocol's [`MAX_FRAME_BYTES`] cap.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    write_frame_with_cap(w, msg, MAX_FRAME_BYTES)
}

fn read_after_prefix<R: Read>(
    r: &mut R,
    mut len_bytes: [u8; 4],
    mut filled: usize,
    cap: usize,
) -> io::Result<Option<Json>> {
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame, over the {cap}-byte protocol cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON frame: {e}")))
}

/// Read one frame, enforcing `cap` on the announced body size. Returns
/// `Ok(None)` on a clean end-of-stream (the peer closed between frames);
/// mid-frame EOF and malformed JSON are errors.
pub fn read_frame_with_cap<R: Read>(r: &mut R, cap: usize) -> io::Result<Option<Json>> {
    read_after_prefix(r, [0u8; 4], 0, cap)
}

/// Read one frame under the protocol's [`MAX_FRAME_BYTES`] cap.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    read_frame_with_cap(r, MAX_FRAME_BYTES)
}

/// Read the rest of a frame whose first length byte (`first`) the caller
/// already consumed. Never returns `Ok(None)`: a frame has started, so
/// EOF from here on is a mid-frame error.
pub fn read_frame_resumed<R: Read>(r: &mut R, first: u8) -> io::Result<Json> {
    let mut len_bytes = [0u8; 4];
    len_bytes[0] = first;
    match read_after_prefix(r, len_bytes, 1, MAX_FRAME_BYTES)? {
        Some(j) => Ok(j),
        None => unreachable!("read_after_prefix with filled > 0 never yields None"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_crc_is_order_and_content_sensitive() {
        assert_eq!(chunk_crc(&[]), chunk_crc(&[]));
        assert_eq!(chunk_crc(&[1, 2, 3]), chunk_crc(&[1, 2, 3]));
        assert_ne!(chunk_crc(&[1, 2, 3]), chunk_crc(&[3, 2, 1]));
        assert_ne!(chunk_crc(&[1, 2, 3]), chunk_crc(&[1, 2]));
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let a = Json::obj().set("op", Json::str("ping"));
        let b = Json::Arr(vec![Json::num(1), Json::num(2)]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(a));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("hello world")).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
        // Truncated length prefix, too.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_header_every_length_is_mid_length_eof() {
        // 1, 2 and 3 bytes of a 4-byte length prefix, then EOF.
        for n in 1..4 {
            let mut cursor = std::io::Cursor::new(vec![0u8; n]);
            let err = read_frame(&mut cursor).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "prefix of {n}");
        }
        // Zero bytes is a clean close, not an error.
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_announcement_is_rejected() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"{}");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// A JSON string whose encoded frame body is exactly `body_len` bytes
    /// (`"...."` with body_len - 2 fill characters).
    fn frame_of_len(body_len: usize) -> Json {
        Json::str("x".repeat(body_len - 2))
    }

    #[test]
    fn exactly_cap_sized_frame_passes_both_paths() {
        let cap = 64;
        let msg = frame_of_len(cap);
        assert_eq!(msg.encode().len(), cap);
        let mut buf = Vec::new();
        write_frame_with_cap(&mut buf, &msg, cap).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame_with_cap(&mut cursor, cap).unwrap(), Some(msg));
    }

    #[test]
    fn cap_plus_one_is_rejected_on_write_and_read() {
        let cap = 64;
        let msg = frame_of_len(cap + 1);
        // Write path: refused before any byte hits the stream.
        let mut buf = Vec::new();
        let err = write_frame_with_cap(&mut buf, &msg, cap).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "a refused frame must write nothing");
        // Read path: the same frame written under a larger cap is refused
        // by a reader enforcing the smaller one.
        write_frame_with_cap(&mut buf, &msg, cap + 1).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame_with_cap(&mut cursor, cap).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn resumed_read_completes_a_started_frame() {
        let msg = Json::obj().set("op", Json::str("stats"));
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let first = buf[0];
        let mut cursor = std::io::Cursor::new(&buf[1..]);
        assert_eq!(read_frame_resumed(&mut cursor, first).unwrap(), msg);
        // EOF after the first byte is mid-frame, never a clean close.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame_resumed(&mut empty, first).is_err());
    }
}
