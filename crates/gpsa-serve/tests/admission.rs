//! Admission control under pressure: queue-full rejection, deadline
//! teardown, and epoch-bumped cache invalidation.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use gpsa::EngineConfig;
use gpsa_graph::{generate, preprocess};
use gpsa_serve::{
    start, AlgorithmSpec, Client, ClientError, ServeConfig, ServeError, ServerHandle, SubmitRequest,
};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-serve-adm-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_csr(dir: &Path, name: &str, el: gpsa_graph::EdgeList) -> PathBuf {
    let path = dir.join(format!("{name}.gcsr"));
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

/// A PageRank spec sized to keep a runner busy for a long time (hundreds
/// of supersteps over a few thousand vertices) — long enough that the
/// admission assertions below cannot race its completion.
fn slow_job() -> AlgorithmSpec {
    AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 2000,
    }
}

/// Poll the server until `pred` holds (the scheduler applies admission
/// asynchronously to the submitting threads).
fn wait_for(client: &mut Client, pred: impl Fn(&gpsa_serve::ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().unwrap();
        if pred(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never reached the expected state: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn boot(tag: &str, config: ServeConfig) -> (ServerHandle, PathBuf) {
    let dir = test_dir(tag);
    let g = build_csr(&dir, "g", generate::cycle(4096));
    let handle = start(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register_graph("g", g.to_str().unwrap()).unwrap();
    (handle, g)
}

#[test]
fn full_queue_rejects_while_in_flight_jobs_complete() {
    let dir = test_dir("queue-full");
    let g = build_csr(&dir, "g", generate::cycle(4096));
    let serve_work = dir.join("serve");
    // One runner, one queue slot: the third concurrent job must bounce.
    let config = ServeConfig::small(&serve_work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(1)
        .with_engine(EngineConfig::small(&serve_work).with_actors(1, 1));
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", g.to_str().unwrap()).unwrap();

    // Occupy the single runner with a long job.
    let running = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", slow_job())).unwrap()
    });
    wait_for(&mut admin, |s| s.running == 1);

    // Fill the single queue slot (different params: must not cache-hit).
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 }))
            .unwrap()
    });
    wait_for(&mut admin, |s| s.queue_depth == 1);

    // Runner busy + queue full: admission control must refuse, typed.
    let mut probe = Client::connect(addr).unwrap();
    let err = probe
        .submit(&SubmitRequest::new("g", AlgorithmSpec::Cc))
        .unwrap_err();
    match err {
        ClientError::Server(ServeError::ServerBusy(_)) => {}
        other => panic!("expected server_busy, got {other:?}"),
    }
    let stats = admin.stats().unwrap();
    assert_eq!(stats.jobs_rejected, 1);
    // The rejection disturbed nothing in flight.
    assert_eq!(stats.running, 1);
    assert_eq!(stats.queue_depth, 1);

    // Both admitted jobs still complete with real results.
    let slow = running.join().unwrap();
    assert_eq!(slow.outcome.supersteps, 2000);
    assert_eq!(slow.outcome.values_u32.len(), 4096);
    let bfs = queued.join().unwrap();
    assert!(!bfs.cache_hit);
    assert!(
        bfs.queue_wait > Duration::ZERO,
        "queued job must report its wait"
    );
    let stats = admin.stats().unwrap();
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_rejected, 1);
}

#[test]
fn expired_deadline_tears_down_and_leaves_the_server_usable() {
    let serve_work = test_dir("deadline").join("serve");
    let config = ServeConfig::small(&serve_work)
        .with_engine(EngineConfig::small(&serve_work).with_actors(1, 1));
    let (handle, g) = boot("deadline", config);
    let mut client = Client::connect(handle.addr()).unwrap();
    let _ = g;

    // A zero deadline has always already expired by the time the runner
    // picks the job up — deterministic deadline_exceeded.
    let err = client
        .submit(
            &SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 }).with_deadline(Duration::ZERO),
        )
        .unwrap_err();
    match err {
        ClientError::Server(ServeError::DeadlineExceeded(_)) => {}
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_deadline, 1);
    assert_eq!(stats.running, 0);

    // Registry and runners are untouched: the same submission with a
    // generous deadline runs to completion.
    let ok = client
        .submit(
            &SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 })
                .with_deadline(Duration::from_secs(120)),
        )
        .unwrap();
    assert!(!ok.cache_hit);
    assert!(ok.outcome.supersteps > 0);
    assert_eq!(ok.stats.jobs_completed, 1);
}

#[test]
fn re_register_bumps_epoch_and_invalidates_cache() {
    let serve_work = test_dir("epoch").join("serve");
    let config = ServeConfig::small(&serve_work)
        .with_engine(EngineConfig::small(&serve_work).with_actors(1, 1));
    let (handle, g) = boot("epoch", config);
    let mut client = Client::connect(handle.addr()).unwrap();

    let req = SubmitRequest::new("g", AlgorithmSpec::Cc);
    let first = client.submit(&req).unwrap();
    assert!(!first.cache_hit);
    let hit = client.submit(&req).unwrap();
    assert!(hit.cache_hit);
    assert_eq!(hit.stats.cache_len, 1);

    // Re-registering the *unchanged* file is a no-op: the stamp matches,
    // so the epoch holds and cached results stay valid.
    let info = client.register_graph("g", g.to_str().unwrap()).unwrap();
    assert_eq!(info.epoch, 1, "unchanged file must not bump the epoch");
    let noop = client.submit(&req).unwrap();
    assert!(noop.cache_hit, "no-op re-register must keep the cache");
    assert_eq!(noop.stats.cache_len, 1);

    // Rewrite the file (same edges, new stamp): now the epoch bumps and
    // cached results are dead.
    std::thread::sleep(Duration::from_millis(20));
    preprocess::edges_to_csr(
        generate::cycle(4096),
        &g,
        &preprocess::PreprocessOptions::default(),
    )
    .unwrap();
    let info = client.register_graph("g", g.to_str().unwrap()).unwrap();
    assert_eq!(info.epoch, 2);
    let after = client.stats().unwrap();
    assert_eq!(
        after.cache_len, 0,
        "re-register must purge the graph's cache"
    );

    let rerun = client.submit(&req).unwrap();
    assert!(!rerun.cache_hit, "epoch bump must force a fresh run");
    // Same file, same deterministic engine: same labels.
    assert_eq!(rerun.outcome.values_u32, first.outcome.values_u32);
    assert_eq!(rerun.stats.jobs_completed, 2);
}

#[test]
fn memory_budget_refuses_oversized_registration() {
    let dir = test_dir("budget");
    let small = build_csr(&dir, "small", generate::chain(64));
    let big = build_csr(&dir, "big", generate::cycle(8192));
    let small_bytes = std::fs::metadata(&small).unwrap().len();
    let serve_work = dir.join("serve");
    let config = ServeConfig::small(&serve_work).with_memory_budget(small_bytes + 64);
    let handle = start(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client
        .register_graph("small", small.to_str().unwrap())
        .unwrap();
    let err = client
        .register_graph("big", big.to_str().unwrap())
        .unwrap_err();
    match err {
        ClientError::Server(ServeError::ServerBusy(_)) => {}
        other => panic!("expected server_busy, got {other:?}"),
    }
    // The resident graph still serves jobs.
    let resp = client
        .submit(&SubmitRequest::new("small", AlgorithmSpec::Bfs { root: 0 }))
        .unwrap();
    assert_eq!(resp.outcome.values_u32.len(), 64);
}
