//! Crash-restart acceptance: a server killed with SIGKILL mid-job must
//! come back from the same `work_dir` with its registry, cache, and
//! journal intact, replay whatever it never finished, and answer
//! resubmitted idempotency keys with results **bit-identical** to an
//! uninterrupted run.
//!
//! The victim server runs in a child process (this same test binary,
//! re-executed with `--exact child_server` and an env-var gate) so the
//! parent can `kill -9` it without dying itself. With `--features chaos`
//! the same harness pins the crash to exact journal states via
//! [`gpsa_serve::ServeFault::CrashAtJournal`] instead of a raw signal.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpsa::{Engine, EngineConfig};
use gpsa_graph::{generate, preprocess, DiskCsr, GraphSnapshot};
use gpsa_serve::job::run_job;
use gpsa_serve::{start, AlgorithmSpec, Client, ServeConfig, ServerStats, SubmitRequest};

const CHILD_ENV: &str = "GPSA_DURABILITY_CHILD";
const WORK_ENV: &str = "GPSA_CHILD_WORK";
#[cfg(feature = "chaos")]
const CRASH_ENV: &str = "GPSA_CHILD_CRASH";
#[cfg(feature = "chaos")]
const DELTA_ENV: &str = "GPSA_CHILD_DELTA_TORN";
#[cfg(feature = "chaos")]
const COMPACT_ENV: &str = "GPSA_CHILD_COMPACT";

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-serve-dur-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_csr(dir: &Path, el: gpsa_graph::EdgeList) -> PathBuf {
    let path = dir.join("g.gcsr");
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

/// The deterministic engine template both server lives and the direct
/// baseline share; 1x1 actors pins the PageRank fold order so float sums
/// are reproducible bit-for-bit.
fn engine_template(work: &Path) -> EngineConfig {
    EngineConfig::small(work).with_actors(1, 1)
}

/// The server configuration used by every life of a server over a given
/// `work_dir` — child process, restarted parent, chaos victim alike.
fn serve_config(work: &Path) -> ServeConfig {
    ServeConfig::small(work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(8)
        .with_engine(engine_template(work))
}

fn direct_bits(alg: &AlgorithmSpec, csr: &Path, work: &Path) -> Vec<u32> {
    std::fs::create_dir_all(work).unwrap();
    let mut cfg = engine_template(work);
    cfg.termination = alg.termination();
    let engine = Engine::new(cfg);
    let graph = Arc::new(GraphSnapshot::from_csr(Arc::new(
        DiskCsr::open(csr).unwrap(),
    )));
    let out = run_job(&engine, &graph, &work.join("values.gval"), alg).unwrap();
    out.values_u32.as_ref().clone()
}

fn slow_pagerank() -> AlgorithmSpec {
    AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 2000,
    }
}

/// Spawn this test binary as a server child over `work` with extra env
/// vars (the chaos tests use them to script the child's fault plan). The
/// child writes its bound address to `<work>/addr.txt` once listening.
fn spawn_child_env(work: &Path, envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args(["--exact", "child_server", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(WORK_ENV, work)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn child server")
}

fn spawn_child(work: &Path, crash: Option<&str>) -> Child {
    match crash {
        #[cfg(feature = "chaos")]
        Some(state) => spawn_child_env(work, &[(CRASH_ENV, state)]),
        _ => spawn_child_env(work, &[]),
    }
}

fn wait_for_addr(work: &Path) -> std::net::SocketAddr {
    let path = work.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(&path) {
            if let Ok(addr) = s.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child server never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_stats(client: &mut Client, pred: impl Fn(&ServerStats) -> bool, what: &str) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().unwrap();
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Not a test of anything by itself: this is the server child the crash
/// tests re-execute the binary into. Gated on an env var, so a normal
/// test run sees it pass as an empty test.
#[test]
fn child_server() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let work = PathBuf::from(std::env::var_os(WORK_ENV).expect("child needs a work dir"));
    #[allow(unused_mut)]
    let mut config = serve_config(&work);
    #[cfg(feature = "chaos")]
    {
        use gpsa_serve::{CompactPoint, ServeFault, ServeFaultPlan};
        let mut plan = ServeFaultPlan::new(1);
        let mut armed = false;
        if let Ok(state) = std::env::var(CRASH_ENV) {
            let state = gpsa_serve::JournalState::parse(&state).expect("valid crash state");
            plan = plan.with(ServeFault::CrashAtJournal { state, nth: 0 });
            armed = true;
        }
        if let Ok(nth) = std::env::var(DELTA_ENV) {
            plan = plan.with(ServeFault::TornDeltaAppend {
                nth: nth.parse().expect("numeric delta-torn index"),
            });
            armed = true;
        }
        if let Ok(point) = std::env::var(COMPACT_ENV) {
            let point = match point.as_str() {
                "before" => CompactPoint::BeforeManifest,
                "after" => CompactPoint::AfterManifest,
                other => panic!("unknown compact crash point {other:?}"),
            };
            plan = plan.with(ServeFault::CrashAtCompact { nth: 0, point });
            armed = true;
        }
        if armed {
            config = config.with_fault_plan(Arc::new(plan));
        }
    }
    let handle = start(config).unwrap();
    let tmp = work.join("addr.txt.tmp");
    std::fs::write(&tmp, handle.addr().to_string()).unwrap();
    std::fs::rename(&tmp, work.join("addr.txt")).unwrap();
    // Serve until the parent kills us (or a safety valve for orphans).
    let deadline = Instant::now() + Duration::from_secs(300);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_job_restart_recovers_and_replays() {
    let dir = test_dir("sigkill");
    let csr = build_csr(&dir, generate::cycle(2048));
    let work = dir.join("serve");
    std::fs::create_dir_all(&work).unwrap();

    // Life 1: a child process we can murder.
    let mut child = spawn_child(&work, None);
    let addr = wait_for_addr(&work);
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    // One job committed before the crash...
    let bfs =
        SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 }).with_idempotency_key("bfs-done");
    let bfs_first = admin.submit(&bfs).unwrap();
    assert!(!bfs_first.cache_hit);

    // ...and one slow job the crash interrupts. Its client sees the
    // connection die; the job's journal records survive.
    let submitter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", slow_pagerank()).with_idempotency_key("pr-interrupted"))
    });
    wait_stats(&mut admin, |s| s.running >= 1, "the slow job to start");
    // Give the Started record's fsync a beat to land before the kill.
    std::thread::sleep(Duration::from_millis(100));
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(
        submitter.join().unwrap().is_err(),
        "the interrupted submit must surface a transport error"
    );

    // Life 2: same work_dir, in-process this time. Recovery runs before
    // the listener accepts, so the very first stats call sees it.
    let handle = start(serve_config(&work)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Registry restored from the manifest, not re-registered.
    let graphs = client.list_graphs().unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs[0].graph_id, "g");
    assert_eq!(graphs[0].n_vertices, 2048);

    // The interrupted job replays; wait for the server to go quiet.
    let stats = wait_stats(
        &mut client,
        |s| s.jobs_completed >= 1 && s.running == 0 && s.queue_depth == 0,
        "the replayed job to finish",
    );
    assert!(stats.jobs_replayed >= 1, "stats: {stats:?}");

    // Resubmitting the interrupted key returns the replayed result —
    // bit-identical to an uninterrupted direct run.
    let pr = client
        .submit(&SubmitRequest::new("g", slow_pagerank()).with_idempotency_key("pr-interrupted"))
        .unwrap();
    let baseline = direct_bits(&slow_pagerank(), &csr, &dir.join("direct-pr"));
    assert_eq!(
        *pr.outcome.values_u32, baseline,
        "replayed job diverged from the uninterrupted run"
    );

    // The committed job's key answers from the restored cache without
    // rerunning, and matches what the first life returned.
    let before = client.stats().unwrap();
    let bfs_again = client.submit(&bfs).unwrap();
    assert!(
        bfs_again.cache_hit,
        "restored cache must answer the committed key"
    );
    assert_eq!(bfs_again.outcome.values_u32, bfs_first.outcome.values_u32);
    assert_eq!(
        client.stats().unwrap().jobs_completed,
        before.jobs_completed,
        "the committed job must not run again"
    );
}

#[test]
fn restart_sweeps_orphaned_scratch_dirs() {
    let dir = test_dir("sweep");
    let work = dir.join("serve");
    // Fake debris from a previous life: scratch dirs nothing owns.
    let jobs = work.join("jobs");
    std::fs::create_dir_all(jobs.join("job-7")).unwrap();
    std::fs::write(jobs.join("job-7").join("values.gval"), vec![0u8; 4096]).unwrap();
    std::fs::create_dir_all(jobs.join("job-9")).unwrap();
    std::fs::write(jobs.join("job-9").join("partial.tmp"), vec![0u8; 1024]).unwrap();

    let handle = start(serve_config(&work)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.scratch_reclaimed_bytes >= 5120,
        "sweep must report reclaimed bytes: {stats:?}"
    );
    assert!(!jobs.join("job-7").exists());
    assert!(!jobs.join("job-9").exists());
}

/// Crash the server at each journal state in turn (chaos builds pin the
/// abort to the exact append) and prove every one recovers to a serving
/// server whose resubmitted keys match the uninterrupted baseline.
#[cfg(feature = "chaos")]
#[test]
fn crash_at_each_journal_state_recovers() {
    use gpsa_serve::JournalState;

    let states = [
        JournalState::Submitted,
        JournalState::Started,
        JournalState::Committed,
    ];
    for state in states {
        let tag = format!("crash-{}", state.as_str());
        let dir = test_dir(&tag);
        let csr = build_csr(&dir, generate::cycle(256));
        let work = dir.join("serve");
        std::fs::create_dir_all(&work).unwrap();

        // Life 1: aborts itself at the scripted journal append.
        let mut child = spawn_child(&work, Some(state.as_str()));
        let addr = wait_for_addr(&work);
        let mut admin = Client::connect(addr).unwrap();
        admin.register_graph("g", csr.to_str().unwrap()).unwrap();
        let req = SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 }).with_idempotency_key("k");
        let submitted = admin.submit(&req);
        assert!(
            submitted.is_err(),
            "[{}] the crash must sever the submit",
            state.as_str()
        );
        child.wait().unwrap();

        // Life 2 recovers. A crash *before* the Submitted record leaves
        // nothing to replay; after it, the job is incomplete and must
        // replay exactly once.
        let handle = start(serve_config(&work)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        let stats = wait_stats(
            &mut client,
            |s| s.running == 0 && s.queue_depth == 0,
            "recovery to go quiet",
        );
        match state {
            JournalState::Submitted => assert_eq!(stats.jobs_replayed, 0, "{stats:?}"),
            _ => assert!(stats.jobs_replayed >= 1, "[{}] {stats:?}", state.as_str()),
        }
        assert_eq!(client.list_graphs().unwrap().len(), 1);

        // Whatever was lost or replayed, the key resolves to the right
        // bits after recovery.
        let resp = client.submit(&req).unwrap();
        let baseline = direct_bits(&AlgorithmSpec::Bfs { root: 0 }, &csr, &dir.join("direct"));
        assert_eq!(
            *resp.outcome.values_u32,
            baseline,
            "[{}] post-recovery result diverged",
            state.as_str()
        );
    }
}

/// A torn journal tail (partial final record, no fsync) must truncate
/// cleanly on restart: the torn Committed record is discarded, the job
/// replays, and the resubmitted key returns identical bits.
#[cfg(feature = "chaos")]
#[test]
fn torn_journal_tail_truncates_and_replays() {
    use gpsa_serve::{ServeFault, ServeFaultPlan};

    let dir = test_dir("torn");
    let csr = build_csr(&dir, generate::cycle(256));
    let work = dir.join("serve");

    // Life 1: the third journal append — the job's Committed record —
    // writes only a prefix. The server itself is unbothered.
    let plan = Arc::new(ServeFaultPlan::new(7).with(ServeFault::TornJournalTail { nth_append: 2 }));
    let config = serve_config(&work).with_fault_plan(plan.clone());
    let mut handle = start(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register_graph("g", csr.to_str().unwrap()).unwrap();
    let req = SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 3 }).with_idempotency_key("t1");
    let first = client.submit(&req).unwrap();
    assert_eq!(plan.fired(), 1, "the torn-tail point must have fired");
    client.ping().unwrap();
    handle.shutdown();

    // Life 2: recovery truncates the tear, sees no Committed record, and
    // replays the job.
    let handle = start(serve_config(&work)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = wait_stats(
        &mut client,
        |s| s.running == 0 && s.queue_depth == 0 && s.jobs_completed >= 1,
        "the torn job to replay",
    );
    assert!(stats.jobs_replayed >= 1, "stats: {stats:?}");
    let again = client.submit(&req).unwrap();
    assert_eq!(again.outcome.values_u32, first.outcome.values_u32);
}

/// Satellite: kill the server mid-`add_edges` — the delta log gets half
/// a framed record, no fsync. Restart must land on the pre-mutation
/// snapshot (the durable first batch survives, the torn second batch
/// vanishes), never a torn one, and cached results still match their
/// `(epoch, delta_seq)` version.
#[cfg(feature = "chaos")]
#[test]
fn crash_mid_add_edges_recovers_untorn_snapshot() {
    let dir = test_dir("delta-torn");
    let csr = build_csr(&dir, generate::chain(512));
    let work = dir.join("serve");
    std::fs::create_dir_all(&work).unwrap();

    // Life 1: the second delta append tears and the process dies.
    let mut child = spawn_child_env(&work, &[(DELTA_ENV, "1")]);
    let addr = wait_for_addr(&work);
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();
    let info = admin.add_edges("g", &[(0, 100), (5, 200)]).unwrap();
    assert_eq!((info.epoch, info.delta_seq), (1, 1));
    assert_eq!(info.n_edges, 513);
    let req = SubmitRequest::new("g", AlgorithmSpec::Cc).with_idempotency_key("cc-live");
    let first = admin.submit(&req).unwrap();
    assert!(!first.cache_hit);
    assert!(
        admin.add_edges("g", &[(7, 300)]).is_err(),
        "the crash must sever the mutation"
    );
    child.wait().unwrap();

    // Life 2: the torn batch is gone, the durable one survives.
    let handle = start(serve_config(&work)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let graphs = client.list_graphs().unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(
        (graphs[0].epoch, graphs[0].delta_seq),
        (1, 1),
        "recovery must land on the pre-mutation snapshot, never a torn one"
    );
    assert_eq!(graphs[0].n_edges, 513);

    // The cached result is still valid for its version and answers
    // without a rerun, bit-identical.
    let before = client.stats().unwrap();
    let again = client.submit(&req).unwrap();
    assert!(
        again.cache_hit,
        "cached result must survive for its version"
    );
    assert_eq!(again.outcome.values_u32, first.outcome.values_u32);
    assert_eq!(
        client.stats().unwrap().jobs_completed,
        before.jobs_completed
    );

    // The log tail is clean: the lost mutation simply re-applies.
    let info = client.add_edges("g", &[(7, 300)]).unwrap();
    assert_eq!((info.epoch, info.delta_seq), (1, 2));
    assert_eq!(info.n_edges, 514);
}

/// Satellite: kill the server mid-compaction, on both sides of the
/// manifest commit. Restart must land on exactly the pre-compaction
/// epoch (crash before the commit) or the post-compaction epoch (crash
/// after), never anything in between — and the same submission answers
/// with the same bits either way.
#[cfg(feature = "chaos")]
#[test]
fn crash_mid_compaction_lands_on_whole_epochs() {
    for (point, expect_epoch, expect_seq) in [("before", 1u64, 1u64), ("after", 2u64, 0u64)] {
        let dir = test_dir(&format!("compact-{point}"));
        let csr = build_csr(&dir, generate::chain(512));
        let work = dir.join("serve");
        std::fs::create_dir_all(&work).unwrap();

        // Life 1: aborts at the scripted compaction commit point.
        let mut child = spawn_child_env(&work, &[(COMPACT_ENV, point)]);
        let addr = wait_for_addr(&work);
        let mut admin = Client::connect(addr).unwrap();
        admin.register_graph("g", csr.to_str().unwrap()).unwrap();
        admin.add_edges("g", &[(0, 100), (5, 200)]).unwrap();
        let req = SubmitRequest::new("g", AlgorithmSpec::Cc).with_idempotency_key("cc");
        let first = admin.submit(&req).unwrap();
        assert!(
            admin.compact("g").is_err(),
            "[{point}] the crash must sever the compact call"
        );
        child.wait().unwrap();

        // Life 2: a whole epoch, one side of the commit or the other.
        let handle = start(serve_config(&work)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let graphs = client.list_graphs().unwrap();
        assert_eq!(graphs.len(), 1, "[{point}]");
        assert_eq!(
            (graphs[0].epoch, graphs[0].delta_seq),
            (expect_epoch, expect_seq),
            "[{point}] recovery must land on a whole epoch"
        );
        assert_eq!(
            graphs[0].n_edges, 513,
            "[{point}] the merged graph survives either way"
        );

        // Same job, same bits: from the cache when the version survived
        // the crash, recomputed when the epoch moved past it.
        let again = client.submit(&req).unwrap();
        assert_eq!(
            again.cache_hit,
            point == "before",
            "[{point}] cached results must match their epoch exactly"
        );
        assert_eq!(
            again.outcome.values_u32, first.outcome.values_u32,
            "[{point}] post-recovery result diverged"
        );
    }
}
