//! Hostile-network acceptance: slow clients are shed without taking the
//! server down, the client retry loop rides out transient failures, and
//! (with `--features chaos`) seeded serving-layer fault schedules —
//! connections dropped mid-frame, stalled writers, torn journal tails —
//! always leave the server serving and the results bit-identical.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use gpsa::EngineConfig;
use gpsa_serve::json::Json;
use gpsa_serve::wire::{read_frame, write_frame};
use gpsa_serve::{start, Client, RetryPolicy, ServeConfig};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-serve-net-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[cfg(feature = "chaos")]
fn build_csr(dir: &Path, el: gpsa_graph::EdgeList) -> PathBuf {
    use gpsa_graph::preprocess;
    let path = dir.join("g.gcsr");
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

fn engine_template(work: &Path) -> EngineConfig {
    EngineConfig::small(work).with_actors(1, 1)
}

/// Fast retries for tests: generous attempt budget, millisecond backoff.
fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        jitter: true,
    }
}

/// A client stalls after sending 2 of the 4 length-prefix bytes. The
/// server must shed it at the frame deadline — and keep serving everyone
/// else the whole time.
#[test]
fn stalled_mid_header_client_is_shed_while_others_are_served() {
    let dir = test_dir("shed");
    let work = dir.join("serve");
    let config = ServeConfig::small(&work)
        .with_engine(engine_template(&work))
        .with_frame_read_timeout(Duration::from_millis(200));
    let handle = start(config).unwrap();
    let addr = handle.addr();

    // The hostile half: a frame that starts and never finishes.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(&[0u8, 0u8]).unwrap();
    stalled.flush().unwrap();

    // The healthy half: round trips must keep completing promptly while
    // the stalled connection ages toward its deadline.
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..10 {
        let t = Instant::now();
        client.ping().unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "healthy client starved behind a stalled one"
        );
        std::thread::sleep(Duration::from_millis(30));
    }

    // The server shed the stalled connection and counted it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if stats.conns_shed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "shed never counted: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The stalled socket got a best-effort slow_client error frame and
    // then the close.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    stalled.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.contains("slow_client"),
        "expected the shed error frame, got {text:?}"
    );
}

/// A fake server that kills its first `drops` connections without
/// answering, then serves ping frames forever. Returns the address and a
/// handle whose join yields how many connections it saw.
fn flaky_listener(drops: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut seen = 0usize;
        loop {
            let (mut stream, _) = listener.accept().unwrap();
            seen += 1;
            if seen <= drops {
                drop(stream); // reset/EOF for the client mid-conversation
                continue;
            }
            while let Ok(Some(_req)) = read_frame(&mut stream) {
                let resp = Json::obj()
                    .set("ok", Json::Bool(true))
                    .set("pong", Json::Bool(true));
                if write_frame(&mut stream, &resp).is_err() {
                    break;
                }
            }
            return seen;
        }
    });
    (addr, handle)
}

#[test]
fn client_retries_reconnect_through_dropped_connections() {
    let (addr, server) = flaky_listener(2);
    let mut client = Client::connect_with(addr, fast_retries()).unwrap();
    // Connection 1 dies answering this; retries reconnect twice more.
    client
        .ping()
        .expect("retries must ride out dropped connections");
    drop(client);
    assert_eq!(server.join().unwrap(), 3);
}

#[test]
fn retries_disabled_fail_fast() {
    let (addr, server) = flaky_listener(1);
    // Default connect: no retries, the first transport error surfaces.
    let mut client = Client::connect(addr).unwrap();
    client.ping().expect_err("no-retry client must fail fast");
    // A second, fresh client reaches the now-healthy listener and lets
    // the thread exit.
    let mut ok = Client::connect(addr).unwrap();
    ok.ping().unwrap();
    drop(ok);
    assert_eq!(server.join().unwrap(), 2);
}

/// A server that answers `server_busy` (retriable) N times before
/// succeeding — the admission-control shape the backoff exists for.
#[test]
fn client_backs_off_through_server_busy_then_succeeds() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut answered = 0usize;
        while let Ok(Some(_req)) = read_frame(&mut stream) {
            answered += 1;
            let resp = if answered <= 3 {
                Json::obj()
                    .set("ok", Json::Bool(false))
                    .set("code", Json::str("server_busy"))
                    .set("message", Json::str("queue full"))
                    .set("retriable", Json::Bool(true))
            } else {
                Json::obj()
                    .set("ok", Json::Bool(true))
                    .set("pong", Json::Bool(true))
            };
            if write_frame(&mut stream, &resp).is_err() {
                break;
            }
        }
        answered
    });
    let mut client = Client::connect_with(addr, fast_retries()).unwrap();
    let t = Instant::now();
    client.ping().expect("busy answers must be retried");
    // Three rejections at 5ms/10ms/20ms base backoff: the retry loop
    // actually waited rather than hammering.
    assert!(t.elapsed() >= Duration::from_millis(15));
    drop(client);
    assert_eq!(server.join().unwrap(), 4);
}

#[test]
fn client_with_exhausted_retries_surfaces_the_busy_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        while let Ok(Some(_req)) = read_frame(&mut stream) {
            let resp = Json::obj()
                .set("ok", Json::Bool(false))
                .set("code", Json::str("server_busy"))
                .set("message", Json::str("always full"))
                .set("retriable", Json::Bool(true));
            if write_frame(&mut stream, &resp).is_err() {
                break;
            }
        }
    });
    let policy = RetryPolicy {
        max_retries: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        jitter: false,
    };
    let mut client = Client::connect_with(addr, policy).unwrap();
    match client.ping() {
        Err(gpsa_serve::ClientError::Server(gpsa_serve::ServeError::ServerBusy(_))) => {}
        other => panic!("expected server_busy after exhausted retries, got {other:?}"),
    }
}

/// Seeded serving-layer chaos: for each seed, script a handful of
/// network/journal faults, drive a retrying client through registration
/// and idempotent submissions, and require (a) every answer bit-identical
/// to the uninterrupted baseline, (b) the plan actually fired, and
/// (c) the server still serving afterwards.
#[cfg(feature = "chaos")]
#[test]
fn scripted_network_faults_leave_the_server_serving() {
    use std::sync::Arc;

    use gpsa::Engine;
    use gpsa_graph::{generate, DiskCsr, GraphSnapshot};
    use gpsa_serve::job::run_job;
    use gpsa_serve::{AlgorithmSpec, ServeFaultPlan, SubmitRequest};

    let dir = test_dir("chaos-net");
    let csr = build_csr(&dir, generate::cycle(512));
    let jobs: Vec<AlgorithmSpec> = vec![
        AlgorithmSpec::Bfs { root: 0 },
        AlgorithmSpec::Cc,
        AlgorithmSpec::Sssp { root: 1 },
        AlgorithmSpec::Bfs { root: 0 }, // duplicate: exercises cached answers
    ];

    // Uninterrupted baselines, once.
    let baselines: Vec<Vec<u32>> = jobs
        .iter()
        .enumerate()
        .map(|(i, alg)| {
            let work = dir.join(format!("direct-{i}"));
            std::fs::create_dir_all(&work).unwrap();
            let mut cfg = engine_template(&work);
            cfg.termination = alg.termination();
            let engine = Engine::new(cfg);
            let graph = Arc::new(GraphSnapshot::from_csr(Arc::new(
                DiskCsr::open(&csr).unwrap(),
            )));
            let out = run_job(&engine, &graph, &work.join("values.gval"), alg).unwrap();
            out.values_u32.as_ref().clone()
        })
        .collect();

    for seed in 1..=4u64 {
        let plan = Arc::new(ServeFaultPlan::scripted(seed, 3));
        let work = dir.join(format!("serve-{seed}"));
        let config = ServeConfig::small(&work)
            .with_engine(engine_template(&work))
            .with_frame_read_timeout(Duration::from_millis(500))
            .with_fault_plan(plan.clone());
        let handle = start(config).unwrap();
        let addr = handle.addr();

        let mut client = Client::connect_with(addr, fast_retries()).unwrap();
        client.register_graph("g", csr.to_str().unwrap()).unwrap();
        for (i, alg) in jobs.iter().enumerate() {
            let req =
                SubmitRequest::new("g", *alg).with_idempotency_key(format!("seed{seed}-job{i}"));
            let resp = client
                .submit(&req)
                .unwrap_or_else(|e| panic!("[seed {seed}] job {i} failed through retries: {e:?}"));
            assert_eq!(
                *resp.outcome.values_u32, baselines[i],
                "[seed {seed}] job {i} diverged under chaos"
            );
        }
        // Flush any response-numbered fault points that haven't come up
        // yet, then require the plan to have done real damage.
        for _ in 0..8 {
            let _ = client.ping();
        }
        assert!(
            plan.fired() >= 1,
            "[seed {seed}] plan never fired: {:?}",
            plan.specs().collect::<Vec<_>>()
        );

        // The server is still healthy: a fresh, no-retry client gets
        // clean answers.
        let mut probe = Client::connect(addr).unwrap();
        probe.ping().unwrap();
        let stats = probe.stats().unwrap();
        assert_eq!(stats.graphs_resident, 1, "[seed {seed}] {stats:?}");
    }
}
