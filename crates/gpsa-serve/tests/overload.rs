//! Multi-tenant overload behavior: per-tenant quotas shed only the hog,
//! deficit-weighted round-robin keeps a light tenant responsive under a
//! 10x flood, streamed results are chunked and bit-identical, vanished
//! clients have their jobs reaped, expired idempotency keys are reaped
//! at boot instead of replayed, and churny overlays auto-compact.
//!
//! With `--features chaos` a soak test drives scripted overload waves
//! (burst storms, slow consumers, tenant floods) plus a mid-stream
//! disconnect against one server and proves it stays live, fair, and
//! bit-identical throughout.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpsa::{Engine, EngineConfig};
use gpsa_graph::{generate, preprocess, DiskCsr, GraphSnapshot};
use gpsa_serve::job::run_job;
#[cfg(feature = "chaos")]
use gpsa_serve::RetryPolicy;
use gpsa_serve::{
    start, AlgorithmSpec, Client, ClientError, JobJournal, JournalRecord, Priority, ServeConfig,
    ServeError, ServerStats, SubmitRequest,
};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-serve-ovl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_csr(dir: &Path, el: gpsa_graph::EdgeList) -> PathBuf {
    let path = dir.join("g.gcsr");
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

/// Deterministic 1x1 engine template: pins fold order so servers and the
/// direct baseline agree bit-for-bit.
fn engine_template(work: &Path) -> EngineConfig {
    EngineConfig::small(work).with_actors(1, 1)
}

fn direct_bits(alg: &AlgorithmSpec, csr: &Path, work: &Path) -> Vec<u32> {
    std::fs::create_dir_all(work).unwrap();
    let mut cfg = engine_template(work);
    cfg.termination = alg.termination();
    let engine = Engine::new(cfg);
    let graph = Arc::new(GraphSnapshot::from_csr(Arc::new(
        DiskCsr::open(csr).unwrap(),
    )));
    let out = run_job(&engine, &graph, &work.join("values.gval"), alg).unwrap();
    out.values_u32.as_ref().clone()
}

/// Long enough that admission assertions cannot race its completion.
fn slow_job() -> AlgorithmSpec {
    AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 2000,
    }
}

fn wait_for(client: &mut Client, pred: impl Fn(&ServerStats) -> bool, what: &str) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().unwrap();
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn expect_quota(result: Result<gpsa_serve::JobResponse, ClientError>, who: &str) {
    match result {
        Err(ClientError::Server(ServeError::QuotaExceeded(_))) => {}
        other => panic!("expected quota_exceeded for {who}, got {other:?}"),
    }
}

/// A tenant at its queued cap is refused with `quota_exceeded` while a
/// different tenant keeps being admitted into the same (non-full) global
/// queue — the global `server_busy` path is untouched.
#[test]
fn queued_quota_sheds_only_the_hog() {
    let dir = test_dir("quota");
    let csr = build_csr(&dir, generate::cycle(4096));
    let work = dir.join("serve");
    let config = ServeConfig::small(&work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(16)
        .with_tenant_max_queued(2)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    // Occupy the single runner; the running job does not count as queued.
    let running = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", slow_job()).with_tenant("hog"))
            .unwrap()
    });
    wait_for(&mut admin, |s| s.running == 1, "the slow job to start");

    // Fill the hog's queued quota with two distinct jobs.
    let queued: Vec<_> = [0u32, 1]
        .into_iter()
        .map(|root| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.submit(&SubmitRequest::new("g", AlgorithmSpec::Bfs { root }).with_tenant("hog"))
                    .unwrap()
            })
        })
        .collect();
    wait_for(&mut admin, |s| s.queue_depth == 2, "the quota to fill");

    // The hog's third queued job sheds; the global queue had 14 free slots.
    let mut probe = Client::connect(addr).unwrap();
    expect_quota(
        probe.submit(&SubmitRequest::new("g", AlgorithmSpec::Cc).with_tenant("hog")),
        "the hog",
    );
    let stats = admin.stats().unwrap();
    assert_eq!(stats.jobs_quota_shed, 1);
    assert_eq!(stats.jobs_rejected, 0, "no global server_busy involved");
    assert_eq!(stats.tenant("hog").unwrap().shed_quota, 1);

    // A different tenant is still admitted.
    let light = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", AlgorithmSpec::Cc).with_tenant("light"))
            .unwrap()
    });
    wait_for(&mut admin, |s| s.queue_depth == 3, "the light admit");
    assert_eq!(admin.stats().unwrap().tenant("light").unwrap().queued, 1);

    // Everything admitted still completes.
    assert_eq!(running.join().unwrap().outcome.supersteps, 2000);
    for t in queued {
        assert!(!t.join().unwrap().cache_hit);
    }
    light.join().unwrap();
    let stats = admin.stats().unwrap();
    assert_eq!(stats.jobs_completed, 4);
    assert_eq!(stats.tenant("hog").unwrap().completed, 3);
}

/// The scratch-byte budget bounds a tenant's queued + running footprint
/// and is released when jobs finish.
#[test]
fn scratch_budget_bounds_and_releases() {
    let dir = test_dir("scratch");
    let csr = build_csr(&dir, generate::cycle(4096));
    let work = dir.join("serve");
    // One job charges 4096 vertices x 4 bytes = 16 KiB; the budget fits
    // exactly one at a time.
    let config = ServeConfig::small(&work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(16)
        .with_tenant_scratch_budget(20_000)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    let running = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", slow_job()).with_tenant("t"))
            .unwrap()
    });
    wait_for(&mut admin, |s| s.running == 1, "the slow job to start");
    assert_eq!(
        admin.stats().unwrap().tenant("t").unwrap().scratch_bytes,
        4096 * 4
    );

    // A second job would put the tenant at 32 KiB > 20 KB: shed. Another
    // tenant has its own budget and sails through.
    let mut probe = Client::connect(addr).unwrap();
    expect_quota(
        probe.submit(&SubmitRequest::new("g", AlgorithmSpec::Cc).with_tenant("t")),
        "the over-budget tenant",
    );
    let other =
        probe.submit(&SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 }).with_tenant("u"));
    running.join().unwrap();
    assert!(other.is_ok(), "other tenants keep their own budget");

    // With the slow job done its charge is released; the same tenant
    // submits again without shedding.
    wait_for(
        &mut admin,
        |s| s.running == 0 && s.queue_depth == 0,
        "drain",
    );
    assert_eq!(admin.stats().unwrap().tenant("t").unwrap().scratch_bytes, 0);
    let again = probe.submit(&SubmitRequest::new("g", AlgorithmSpec::Cc).with_tenant("t"));
    assert!(again.is_ok(), "released budget must re-admit: {again:?}");
}

/// The fairness acceptance test: a light tenant's p99 latency under a
/// heavy tenant's 10x flood stays within a fixed multiple of its solo
/// p99 — deficit round-robin serves it next-ish, never behind the whole
/// flood backlog.
#[test]
fn light_tenant_p99_survives_a_10x_flood() {
    let dir = test_dir("fairness");
    let csr = build_csr(&dir, generate::cycle(1024));
    let work = dir.join("serve");
    // Cache off: every submission must genuinely run and queue.
    let config = ServeConfig::small(&work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(256)
        .with_tenant_max_queued(64)
        .with_cache_capacity(0)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    let spec = || AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 20,
    };
    let light_submit = |c: &mut Client| {
        let t0 = Instant::now();
        c.submit(&SubmitRequest::new("g", spec()).with_tenant("light"))
            .unwrap();
        t0.elapsed()
    };

    // Solo baseline: 8 sequential light jobs on an idle server.
    let mut light = Client::connect(addr).unwrap();
    let solo_p99 = (0..8).map(|_| light_submit(&mut light)).max().unwrap();

    // The flood: 32 heavy connections, 4 jobs each, all one tenant.
    let flood: Vec<_> = (0..32)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..4 {
                    c.submit(&SubmitRequest::new("g", spec()).with_tenant("heavy"))
                        .unwrap();
                }
            })
        })
        .collect();
    wait_for(&mut admin, |s| s.queue_depth >= 24, "the flood to back up");

    // Light tenant under contention: same 8 sequential jobs.
    let contended_p99 = (0..8).map(|_| light_submit(&mut light)).max().unwrap();

    // The flood must still be deep when the measurement ends, or the
    // tail jobs weren't actually contended.
    let mid = admin.stats().unwrap();
    assert!(
        mid.queue_depth >= 8,
        "flood drained before the light jobs finished: {mid:?}"
    );
    for t in flood {
        t.join().unwrap();
    }

    // A FIFO queue would park each light job behind the >=24-deep heavy
    // backlog (~24x a job's service time). Fair queuing bounds the wait
    // to about one quantum of the other tenant's work.
    let bound = (solo_p99 * 6).max(Duration::from_millis(250));
    assert!(
        contended_p99 <= bound,
        "light p99 {contended_p99:?} exceeded {bound:?} (solo p99 {solo_p99:?})"
    );
    let stats = admin.stats().unwrap();
    assert_eq!(stats.tenant("light").unwrap().shed_quota, 0);
    assert_eq!(stats.tenant("light").unwrap().completed, 16);
    assert_eq!(stats.tenant("heavy").unwrap().completed, 128);
}

/// Streamed results arrive as CRC'd chunks the client reassembles under
/// a per-frame cap far smaller than the full result, and match both the
/// monolithic reply and a direct engine run bit-for-bit.
#[test]
fn streamed_results_are_bit_identical_under_a_chunk_sized_cap() {
    let dir = test_dir("stream");
    // 16K vertices: the monolithic values frame (~10 bytes/value) is far
    // larger than the ~66 KiB per-frame allowance a 100-value chunk
    // negotiates, so a server that failed to chunk would fail the read.
    let csr = build_csr(&dir, generate::cycle(16384));
    let work = dir.join("serve");
    let config = ServeConfig::small(&work)
        .with_cache_capacity(0)
        .with_stream_chunk_values(100)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register_graph("g", csr.to_str().unwrap()).unwrap();

    let alg = AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 20,
    };
    let streamed = client
        .submit(&SubmitRequest::new("g", alg).with_stream())
        .unwrap();
    assert_eq!(streamed.outcome.values_u32.len(), 16384);
    assert!(!streamed.cache_hit);
    assert!(
        streamed.outcome.supersteps > 0,
        "summary survives streaming"
    );

    let monolithic = client.submit(&SubmitRequest::new("g", alg)).unwrap();
    assert_eq!(monolithic.outcome.values_u32, streamed.outcome.values_u32);

    let baseline = direct_bits(&alg, &csr, &dir.join("direct"));
    assert_eq!(*streamed.outcome.values_u32, baseline);

    // The connection is clean after a stream: the same client keeps
    // making ordinary calls.
    client.ping().unwrap();
    assert_eq!(client.stats().unwrap().jobs_completed, 2);
}

/// A client that vanishes while its job is queued has the job reaped —
/// journaled `Failed(cancelled)` — without disturbing the job that was
/// running.
#[test]
fn vanished_client_has_its_queued_job_reaped() {
    use gpsa_serve::json::Json;
    use gpsa_serve::wire::write_frame;

    let dir = test_dir("reap");
    let csr = build_csr(&dir, generate::cycle(4096));
    let work = dir.join("serve");
    let config = ServeConfig::small(&work)
        .with_max_concurrent_jobs(1)
        .with_queue_capacity(8)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    let running = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(&SubmitRequest::new("g", slow_job())).unwrap()
    });
    wait_for(&mut admin, |s| s.running == 1, "the slow job to start");

    // A raw connection submits a job and disappears without reading the
    // reply.
    let mut doomed = std::net::TcpStream::connect(addr).unwrap();
    let req = Json::obj()
        .set("op", Json::str("submit"))
        .set("graph_id", Json::str("g"))
        .set("algorithm", Json::str("bfs"))
        .set("params", Json::obj().set("root", Json::num(0)));
    write_frame(&mut doomed, &req).unwrap();
    wait_for(
        &mut admin,
        |s| s.queue_depth == 1,
        "the doomed job to queue",
    );
    drop(doomed);

    // The disconnect poll notices, the sweep reaps, and the queue empties
    // while the slow job is still running.
    let stats = wait_for(
        &mut admin,
        |s| s.jobs_cancelled >= 1 && s.queue_depth == 0,
        "the reap",
    );
    assert_eq!(stats.running, 1, "the running job must be undisturbed");
    assert_eq!(running.join().unwrap().outcome.supersteps, 2000);
    // The reaped job never ran.
    assert_eq!(admin.stats().unwrap().jobs_completed, 1);
}

/// Boot-time journal replay reaps a keyed incomplete job whose
/// submission is older than the idempotency TTL — `Failed` is appended
/// so the next boot sees it terminal — instead of replaying it against a
/// reply channel nobody holds.
#[test]
fn boot_reaps_expired_idempotency_keys_instead_of_replaying() {
    let dir = test_dir("ttl");
    let csr = build_csr(&dir, generate::cycle(256));
    let work = dir.join("serve");
    std::fs::create_dir_all(&work).unwrap();

    // Craft the aftermath of a crash: one keyed job submitted an hour
    // ago (far past the TTL below) that never reached a terminal state.
    let journal_path = work.join("journal.wal");
    {
        let (mut j, existing) = JobJournal::open(&journal_path).unwrap();
        assert!(existing.is_empty());
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_millis() as u64;
        j.append(&JournalRecord::Submitted {
            job_id: 1,
            key: Some("stale-key".to_string()),
            graph_id: "g".to_string(),
            algorithm: AlgorithmSpec::Bfs { root: 0 },
            priority: Priority::Normal,
            tenant: "default".to_string(),
            at_ms: now_ms.saturating_sub(3_600_000),
        })
        .unwrap();
    }

    let config = || {
        ServeConfig::small(&work)
            .with_idem_key_ttl(Duration::from_secs(60))
            .with_engine(engine_template(&work))
    };
    let handle = start(config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_cancelled, 1, "the stale job must be reaped");
    assert_eq!(stats.jobs_replayed, 0, "and must not replay");

    // The key is free again: the same key submits and runs fresh.
    client.register_graph("g", csr.to_str().unwrap()).unwrap();
    let resp = client
        .submit(
            &SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 })
                .with_idempotency_key("stale-key"),
        )
        .unwrap();
    assert!(
        !resp.cache_hit,
        "an expired key must not resurrect a result"
    );
    drop(client);
    drop(handle);

    // Next boot sees the reaped job as terminal: nothing reaps or
    // replays again (the fresh job committed).
    let handle = start(config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_cancelled, 0, "the reap must be durable");
    assert_eq!(stats.jobs_replayed, 0);
}

/// Regression: a mutation that pushes a live graph's delta/base edge
/// ratio over the configured threshold triggers a compaction on the
/// scheduler's own authority; under the threshold (or disabled) nothing
/// happens.
#[test]
fn churny_overlay_auto_compacts_at_the_threshold() {
    let dir = test_dir("autocompact");
    let csr = build_csr(&dir, generate::chain(64)); // 63 base edges
    let work = dir.join("serve");
    let config = ServeConfig::small(&work)
        .with_auto_compact_ratio(0.5)
        .with_engine(engine_template(&work));
    let handle = start(config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.register_graph("g", csr.to_str().unwrap()).unwrap();

    // 20 delta edges over 63 base: ratio 0.32, under the 0.5 trigger.
    let under: Vec<(u32, u32)> = (0..20).map(|i| (i, 63 - i)).collect();
    let info = client.add_edges("g", &under).unwrap();
    assert_eq!((info.epoch, info.delta_seq), (1, 1));
    std::thread::sleep(Duration::from_millis(100));
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.auto_compactions, 0,
        "under-threshold churn must not compact"
    );
    assert_eq!(client.list_graphs().unwrap()[0].epoch, 1);

    // 14 more (34/63 = 0.54) crosses it: the scheduler compacts by
    // itself and the graph lands on a fresh epoch with an empty overlay.
    // (i, i+32) never collides with a chain edge or the first batch.
    let over: Vec<(u32, u32)> = (20..34).map(|i| (i, (i + 32) % 64)).collect();
    client.add_edges("g", &over).unwrap();
    let stats = wait_for(
        &mut client,
        |s| s.auto_compactions >= 1,
        "the auto-compaction to trigger",
    );
    assert_eq!(stats.auto_compactions, 1);
    let deadline = Instant::now() + Duration::from_secs(30);
    let info = loop {
        let info = client.list_graphs().unwrap().remove(0);
        if info.epoch == 2 {
            break info;
        }
        assert!(Instant::now() < deadline, "compaction never committed");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        info.delta_seq, 0,
        "the overlay must fold into the new epoch"
    );
    assert_eq!(info.n_edges, 63 + 34);

    // The compacted graph still answers, and the folded edges are there.
    let resp = client
        .submit(&SubmitRequest::new("g", AlgorithmSpec::Cc))
        .unwrap();
    assert_eq!(resp.outcome.values_u32.len(), 64);
}

/// The overload soak (chaos builds): scripted waves of burst storms,
/// slow consumers, and tenant floods hammer one server while a light
/// tenant keeps submitting with retries on — through a scripted
/// mid-stream disconnect. The server must stay live, shed only the
/// flooding tenant's excess, and hand the light tenant bit-identical
/// results every single time.
#[cfg(feature = "chaos")]
#[test]
fn overload_soak_stays_live_fair_and_bit_identical() {
    use gpsa_serve::{OverloadWave, ServeFault, ServeFaultPlan};
    use std::io::Write;

    let dir = test_dir("soak");
    let csr = build_csr(&dir, generate::cycle(2048));
    let work = dir.join("serve");
    let plan =
        Arc::new(ServeFaultPlan::new(11).with(ServeFault::DisconnectMidStream { nth_chunk: 3 }));
    let config = ServeConfig::small(&work)
        .with_max_concurrent_jobs(2)
        .with_queue_capacity(64)
        .with_tenant_max_queued(4)
        .with_stream_chunk_values(64)
        .with_frame_read_timeout(Duration::from_millis(200))
        .with_engine(engine_template(&work))
        .with_fault_plan(plan.clone());
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g", csr.to_str().unwrap()).unwrap();

    let alg = AlgorithmSpec::PageRank {
        damping: 0.85,
        supersteps: 10,
    };
    let baseline = direct_bits(&alg, &csr, &dir.join("direct"));

    // Abusive tenants vary damping per submission so the cache can't
    // absorb the flood — every abusive job really queues and runs.
    let uniq = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let abusive = {
        let uniq = uniq.clone();
        move || AlgorithmSpec::PageRank {
            damping: 0.5 + uniq.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as f32 * 1e-6,
            supersteps: 10,
        }
    };

    // The light tenant: sequential keyed submits, streaming every other
    // one, retries on. Every result must be bit-identical to the direct
    // run — including the one whose stream the fault plan severs.
    let light_alg = alg.clone();
    let light_baseline = baseline.clone();
    let light = std::thread::spawn(move || {
        let mut c = Client::connect_with(addr, RetryPolicy::default_enabled()).unwrap();
        for i in 0..16 {
            let mut req = SubmitRequest::new("g", light_alg.clone())
                .with_tenant("light")
                .with_idempotency_key(format!("soak-{i}"));
            if i % 2 == 0 {
                req = req.with_stream();
            }
            let resp = c
                .submit(&req)
                .unwrap_or_else(|e| panic!("light job {i}: {e}"));
            assert_eq!(
                *resp.outcome.values_u32, light_baseline,
                "light job {i} diverged under load"
            );
        }
    });

    // The abuse: a seeded schedule of overload waves, plus a guaranteed
    // tenant flood at the end (the seed decides whether the schedule
    // itself contains one).
    let waves = OverloadWave::schedule(11, 6)
        .into_iter()
        .chain([OverloadWave::TenantFlood { n: 12 }]);
    for wave in waves {
        match wave {
            OverloadWave::BurstStorm { burst, idle_ms } => {
                let threads: Vec<_> = (0..burst)
                    .map(|_| {
                        let alg = abusive();
                        std::thread::spawn(move || {
                            let mut c = Client::connect(addr).unwrap();
                            // Sheds are expected and fine; panics are not.
                            let _ = c.submit(&SubmitRequest::new("g", alg).with_tenant("burst"));
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
                std::thread::sleep(Duration::from_millis(idle_ms));
            }
            OverloadWave::SlowConsumer { delay_ms } => {
                // Start a frame, stall past the read deadline, vanish.
                let mut s = std::net::TcpStream::connect(addr).unwrap();
                s.write_all(&(64u32).to_be_bytes()).unwrap();
                s.write_all(b"{\"op\":").unwrap();
                std::thread::sleep(Duration::from_millis(delay_ms.max(250)));
                drop(s);
            }
            OverloadWave::TenantFlood { n } => {
                let threads: Vec<_> = (0..n)
                    .map(|_| {
                        let specs: Vec<_> = (0..3).map(|_| abusive()).collect();
                        std::thread::spawn(move || {
                            let mut c = Client::connect(addr).unwrap();
                            let mut sheds = 0u64;
                            for alg in specs {
                                match c.submit(&SubmitRequest::new("g", alg).with_tenant("flood")) {
                                    Ok(_) => {}
                                    Err(ClientError::Server(ServeError::QuotaExceeded(_)))
                                    | Err(ClientError::Server(ServeError::ServerBusy(_))) => {
                                        sheds += 1
                                    }
                                    Err(e) => panic!("flood saw a non-shed failure: {e}"),
                                }
                            }
                            sheds
                        })
                    })
                    .collect();
                let _sheds: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
            }
        }
    }

    light.join().unwrap();

    // The server survived the whole campaign.
    admin.ping().unwrap();
    let stats = wait_for(
        &mut admin,
        |s| s.running == 0 && s.queue_depth == 0,
        "the soak to drain",
    );
    assert_eq!(plan.fired(), 1, "the mid-stream disconnect must have fired");
    // Fairness under the flood: only the abusive tenants were shed.
    let light_stats = stats.tenant("light").unwrap();
    assert_eq!(light_stats.shed_quota, 0, "light tenant must never shed");
    assert_eq!(
        light_stats.cancelled, 0,
        "light tenant must never be reaped"
    );
    assert!(
        stats.tenant("flood").map_or(0, |t| t.shed_quota) > 0
            || stats.jobs_quota_shed > 0
            || stats.jobs_rejected > 0,
        "the flood was supposed to overload something: {stats:?}"
    );
    assert!(
        stats.conns_shed >= 1,
        "slow consumers must be shed: {stats:?}"
    );
}
