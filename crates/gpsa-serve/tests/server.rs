//! End-to-end acceptance: boot a server, hammer it with overlapping jobs
//! over the wire protocol, and hold every result to byte-for-byte
//! identity with a direct in-process engine run.
//!
//! Bit-identity for PageRank (f32 sums) requires a fixed fold order, so
//! both the server's engine template and the direct baseline run with
//! 1 dispatcher x 1 computer; BFS / CC / SSSP are min-folds and are exact
//! under any schedule.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use gpsa::{Engine, EngineConfig};
use gpsa_graph::{generate, preprocess, DiskCsr, GraphSnapshot};
use gpsa_serve::job::run_job;
use gpsa_serve::{start, AlgorithmSpec, Client, Priority, ServeConfig, SubmitRequest};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_csr(dir: &Path, name: &str, el: gpsa_graph::EdgeList) -> PathBuf {
    let path = dir.join(format!("{name}.gcsr"));
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

/// The deterministic engine template shared by the server and the direct
/// baseline: identical actor counts, batching, and routing.
fn engine_template(work: &Path) -> EngineConfig {
    EngineConfig::small(work).with_actors(1, 1)
}

/// Run `alg` directly in-process against `csr`, same template as the
/// server, and return the value bits.
fn direct_bits(alg: &AlgorithmSpec, csr: &Path, work: &Path) -> Vec<u32> {
    std::fs::create_dir_all(work).unwrap();
    let mut cfg = engine_template(work);
    cfg.termination = alg.termination();
    let engine = Engine::new(cfg);
    let graph = Arc::new(GraphSnapshot::from_csr(Arc::new(
        DiskCsr::open(csr).unwrap(),
    )));
    let out = run_job(&engine, &graph, &work.join("values.gval"), alg).unwrap();
    out.values_u32.as_ref().clone()
}

#[test]
fn overlapping_jobs_match_direct_runs_bit_for_bit() {
    let dir = test_dir("overlap");
    let g1 = build_csr(&dir, "g1", generate::erdos_renyi(600, 3000, 7));
    let g2 = build_csr(&dir, "g2", generate::cycle(400));

    let serve_work = dir.join("serve");
    let config = ServeConfig::small(&serve_work)
        .with_max_concurrent_jobs(3)
        .with_queue_capacity(16)
        .with_engine(engine_template(&serve_work));
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let mut admin = Client::connect(addr).unwrap();
    admin.ping().unwrap();
    let info = admin.register_graph("g1", g1.to_str().unwrap()).unwrap();
    assert_eq!(info.epoch, 1);
    assert_eq!(info.n_vertices, 600);
    admin.register_graph("g2", g2.to_str().unwrap()).unwrap();
    assert_eq!(admin.list_graphs().unwrap().len(), 2);

    // Ten overlapping jobs: mixed algorithms, both graphs, a deliberate
    // duplicate (jobs 0 and 7), and mixed priorities.
    let jobs: Vec<(&str, AlgorithmSpec)> = vec![
        (
            "g1",
            AlgorithmSpec::PageRank {
                damping: 0.85,
                supersteps: 5,
            },
        ),
        ("g1", AlgorithmSpec::Bfs { root: 0 }),
        ("g1", AlgorithmSpec::Cc),
        ("g1", AlgorithmSpec::Sssp { root: 0 }),
        (
            "g2",
            AlgorithmSpec::PageRank {
                damping: 0.9,
                supersteps: 4,
            },
        ),
        ("g2", AlgorithmSpec::Bfs { root: 3 }),
        ("g2", AlgorithmSpec::Cc),
        (
            "g1",
            AlgorithmSpec::PageRank {
                damping: 0.85,
                supersteps: 5,
            },
        ),
        ("g2", AlgorithmSpec::Sssp { root: 1 }),
        ("g1", AlgorithmSpec::Bfs { root: 5 }),
    ];
    assert!(jobs.len() >= 8, "acceptance requires >= 8 overlapping jobs");

    // One thread + one connection per job, all in flight at once.
    let handles: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, (graph_id, alg))| {
            let (graph_id, alg, addr) = (graph_id.to_string(), *alg, addr);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut req = SubmitRequest::new(graph_id, alg);
                if i % 3 == 0 {
                    req = req.with_priority(Priority::High);
                }
                client.submit(&req).unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every response must match its direct baseline bit-for-bit.
    for (i, ((graph_id, alg), resp)) in jobs.iter().zip(&responses).enumerate() {
        let csr = if *graph_id == "g1" { &g1 } else { &g2 };
        let baseline = direct_bits(alg, csr, &dir.join(format!("direct-{i}")));
        assert_eq!(
            *resp.outcome.values_u32,
            baseline,
            "job {i} ({}/{graph_id}) diverged from the direct engine run",
            alg.name()
        );
        assert!(resp.outcome.supersteps > 0 || resp.cache_hit);
        // Counters ride on every response.
        assert!(resp.stats.max_concurrent_jobs == 3);
    }

    // All ten either ran or were answered from cache (the duplicate pair
    // may race; both orderings are legal). Nothing was rejected.
    let stats = admin.stats().unwrap();
    assert_eq!(stats.jobs_rejected, 0);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.running, 0);
    assert!(stats.jobs_completed >= 9, "stats: {stats:?}");
    assert_eq!(
        stats.jobs_completed + stats.cache_hits,
        jobs.len() as u64,
        "every job completed or hit the cache: {stats:?}"
    );
}

#[test]
fn cache_hit_answers_without_running_a_superstep() {
    let dir = test_dir("cache");
    let g = build_csr(&dir, "g", generate::grid(12, 12));
    let serve_work = dir.join("serve");
    let config = ServeConfig::small(&serve_work).with_engine(engine_template(&serve_work));
    let handle = start(config).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    client.register_graph("g", g.to_str().unwrap()).unwrap();

    let req = SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 0 });
    let first = client.submit(&req).unwrap();
    assert!(!first.cache_hit);
    assert!(first.outcome.supersteps > 0);
    assert_eq!(first.stats.jobs_completed, 1);

    let before = client.stats().unwrap();
    let second = client.submit(&req).unwrap();
    assert!(
        second.cache_hit,
        "identical resubmission must hit the cache"
    );
    assert_eq!(second.outcome.values_u32, first.outcome.values_u32);
    // No superstep ran: the completion counter did not move, and the
    // cached answer carries zero run time.
    assert_eq!(second.stats.jobs_completed, before.jobs_completed);
    assert_eq!(second.run_time, Duration::ZERO);
    assert_eq!(second.queue_wait, Duration::ZERO);
    assert_eq!(second.stats.cache_hits, before.cache_hits + 1);

    // Same algorithm, different params: a miss, runs for real.
    let other = client
        .submit(&SubmitRequest::new("g", AlgorithmSpec::Bfs { root: 7 }))
        .unwrap();
    assert!(!other.cache_hit);
    assert_ne!(other.outcome.values_u32, first.outcome.values_u32);
}

#[test]
fn unknown_graph_and_bad_algorithm_are_typed_errors() {
    let dir = test_dir("errors");
    let serve_work = dir.join("serve");
    let handle = start(ServeConfig::small(&serve_work)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .submit(&SubmitRequest::new("nope", AlgorithmSpec::Cc))
        .unwrap_err();
    match err {
        gpsa_serve::ClientError::Server(gpsa_serve::ServeError::UnknownGraph(_)) => {}
        other => panic!("expected unknown_graph, got {other:?}"),
    }

    let err = client
        .register_graph("g", "/definitely/not/here.gcsr")
        .unwrap_err();
    match err {
        gpsa_serve::ClientError::Server(gpsa_serve::ServeError::BadRequest(_)) => {}
        other => panic!("expected bad_request, got {other:?}"),
    }
    // The connection survives typed errors.
    client.ping().unwrap();
}
