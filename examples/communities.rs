//! Community structure: connected components over a graph of several
//! dense clusters joined by sparse bridges, with component-size
//! statistics.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example communities
//! ```

use std::collections::BTreeMap;

use gpsa::programs::ConnectedComponents;
use gpsa::{Engine, EngineConfig};
use gpsa_graph::generate;
use gpsa_graph::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build `k` Erdős–Rényi clusters of `size` vertices; join a random pair
/// of clusters with a bridge edge with probability `p_bridge` each.
fn clustered_graph(k: usize, size: usize, p_bridge: f64, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * size) as u32;
        let cluster = generate::erdos_renyi(size, size * 6, seed + c as u64 + 1);
        for e in cluster.edges {
            edges.push(Edge::new(base + e.src, base + e.dst));
            edges.push(Edge::new(base + e.dst, base + e.src));
        }
    }
    for a in 0..k {
        for b in (a + 1)..k {
            if rng.gen_bool(p_bridge) {
                let u = (a * size) as u32 + rng.gen_range(0..size) as u32;
                let v = (b * size) as u32 + rng.gen_range(0..size) as u32;
                edges.push(Edge::new(u, v));
                edges.push(Edge::new(v, u));
                println!("bridge: cluster {a} <-> cluster {b}");
            }
        }
    }
    EdgeList::with_vertices(edges, k * size)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::temp_dir().join("gpsa-communities");
    std::fs::create_dir_all(&work_dir)?;

    let graph = clustered_graph(12, 2_000, 0.12, 2024);
    println!(
        "graph: {} vertices, {} edges, 12 clusters",
        graph.n_vertices,
        graph.len()
    );

    let engine = Engine::new(EngineConfig::new(&work_dir));
    let report = engine.run_edge_list(graph, "clusters", ConnectedComponents)?;

    let mut sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for &label in &report.values {
        *sizes.entry(label).or_default() += 1;
    }
    let mut by_size: Vec<(u32, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));

    println!(
        "{} connected components found in {} supersteps ({:?})",
        by_size.len(),
        report.supersteps,
        report.superstep_total()
    );
    for (label, size) in &by_size {
        let clusters = size / 2_000;
        println!("  component {label:>6}: {size:>6} vertices (~{clusters} clusters merged)");
    }
    Ok(())
}
