//! Distributed GPSA: the same actor protocol spanning a simulated
//! cluster (the paper's §III claim that the model "can be directly
//! applicable to distributed systems"), with cross-node traffic as the
//! observable.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example distributed
//! ```

use gpsa::programs::ConnectedComponents;
use gpsa::Termination;
use gpsa_dist::{Cluster, ClusterConfig};
use gpsa_graph::generate::{self, RmatParams};
use gpsa_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work = std::env::temp_dir().join("gpsa-distributed");
    std::fs::create_dir_all(&work)?;
    let el = generate::symmetrize(&generate::rmat(40_000, 200_000, RmatParams::default(), 21));
    println!(
        "graph: {} vertices, {} edges (symmetrized R-MAT)\n",
        el.n_vertices,
        el.len()
    );

    let mut t = Table::new(&[
        "nodes",
        "supersteps",
        "total time",
        "local msgs",
        "remote msgs",
        "remote %",
    ]);
    let mut first_values: Option<Vec<u32>> = None;
    for nodes in [1usize, 2, 4, 8] {
        let config = ClusterConfig::new(nodes, work.join(format!("n{nodes}"))).with_termination(
            Termination::Quiescence {
                max_supersteps: 10_000,
            },
        );
        let cluster = Cluster::new(config);
        let report = cluster.run(&el, ConnectedComponents)?;
        match &first_values {
            None => first_values = Some(report.values.clone()),
            Some(v) => assert_eq!(v, &report.values, "all cluster sizes agree"),
        }
        let total: std::time::Duration = report.step_times.iter().sum();
        let local = report.traffic.local();
        let remote = report.traffic.remote();
        t.row(&[
            nodes.to_string(),
            report.supersteps.to_string(),
            format!("{total:.2?}"),
            local.to_string(),
            remote.to_string(),
            format!(
                "{:.0}%",
                100.0 * remote as f64 / (local + remote).max(1) as f64
            ),
        ]);
    }
    print!("{t}");
    println!(
        "\nRange partitioning of an R-MAT graph sends most messages across \
         nodes as the cluster grows — the communication cost the paper's \
         distributed-systems discussion (§I) warns about, now measurable."
    );
    Ok(())
}
