//! Lightweight fault tolerance (paper §IV-G): crash a run mid-superstep,
//! then recover from the always-immutable column and finish — no
//! checkpoint files, no redo log.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example fault_tolerance
//! ```

use gpsa::programs::ConnectedComponents;
use gpsa::{Engine, EngineConfig, RunOutcome};
use gpsa_graph::{generate, preprocess};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::temp_dir().join("gpsa-fault");
    std::fs::create_dir_all(&work_dir)?;
    let csr_path = work_dir.join("graph.gcsr");
    let el = generate::symmetrize(&generate::rmat(
        20_000,
        120_000,
        generate::RmatParams::default(),
        11,
    ));
    preprocess::edges_to_csr(el, &csr_path, &preprocess::PreprocessOptions::default())?;

    // Run 1: durable commits on, injected crash after the dispatch phase
    // of superstep 2 — compute actors never flush, the header is never
    // advanced, and the update column is left half-written (paper Fig. 6).
    let mut config = EngineConfig::new(&work_dir);
    config.durable = true;
    config.crash_after_dispatch = Some(2);
    let crashed = Engine::new(config).run(&csr_path, ConnectedComponents)?;
    assert_eq!(crashed.outcome, RunOutcome::Crashed);
    println!(
        "run 1 crashed mid-superstep after {} committed supersteps (as injected)",
        crashed.supersteps
    );

    // Run 2: resume. Recovery trusts the column named by the last durable
    // header commit — the dispatch column of the crashed superstep, whose
    // payloads dispatchers never mutate — re-activates every vertex, and
    // re-runs the interrupted superstep conservatively.
    let mut config = EngineConfig::new(&work_dir);
    config.resume = true;
    let recovered = Engine::new(config).run(&csr_path, ConnectedComponents)?;
    println!(
        "run 2 recovered and completed after {} more supersteps ({:?})",
        recovered.supersteps,
        recovered.superstep_total()
    );

    // Sanity: the recovered fixpoint equals a crash-free run's.
    let clean_dir = work_dir.join("clean");
    std::fs::create_dir_all(&clean_dir)?;
    let clean_csr = clean_dir.join("graph.gcsr");
    std::fs::copy(&csr_path, &clean_csr)?;
    std::fs::copy(
        gpsa_graph::disk_csr::index_path(&csr_path),
        gpsa_graph::disk_csr::index_path(&clean_csr),
    )?;
    let clean = Engine::new(EngineConfig::new(&clean_dir)).run(&clean_csr, ConnectedComponents)?;
    assert_eq!(clean.values, recovered.values);
    println!(
        "verified: recovered labels match a crash-free run ({} components)",
        {
            let mut labels = recovered.values.clone();
            labels.sort_unstable();
            labels.dedup();
            labels.len()
        }
    );
    Ok(())
}
