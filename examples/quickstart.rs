//! Quickstart: build a small synthetic social graph, run PageRank on the
//! GPSA engine, and print the most influential vertices.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example quickstart
//! ```

use gpsa::programs::PageRank;
use gpsa::{Engine, EngineConfig, Termination};
use gpsa_graph::generate::{self, RmatParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::temp_dir().join("gpsa-quickstart");
    std::fs::create_dir_all(&work_dir)?;

    // 1. A scale-free graph: 10k vertices, 80k edges (R-MAT, the shape of
    //    real social networks).
    let graph = generate::rmat(10_000, 80_000, RmatParams::default(), 42);
    println!(
        "graph: {} vertices, {} edges",
        graph.n_vertices,
        graph.len()
    );

    // 2. An engine: the paper's 5-superstep PageRank methodology.
    let config = EngineConfig::new(&work_dir).with_termination(Termination::Supersteps(5));
    let engine = Engine::new(config);

    // 3. Run. `run_edge_list` preprocesses to the on-disk CSR format and
    //    executes the actor pipeline (dispatchers + computers + manager).
    let report = engine.run_edge_list(graph, "quickstart", PageRank::default())?;

    println!(
        "ran {} supersteps in {:?} (mean {:?}/superstep), {} messages",
        report.supersteps,
        report.superstep_total(),
        report.mean_superstep(5),
        report.messages,
    );

    // 4. Top-10 vertices by rank.
    let mut idx: Vec<u32> = (0..report.values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        report.values[b as usize]
            .partial_cmp(&report.values[a as usize])
            .unwrap()
    });
    println!("top 10 by PageRank:");
    for &v in idx.iter().take(10) {
        println!("  v{v}: {:.6}", report.values[v as usize]);
    }
    Ok(())
}
