//! Reachability analysis: BFS from a seed page over a web-like graph,
//! printing the frontier profile per superstep — and demonstrating the
//! inactive-vertex skipping that makes GPSA/GraphChi-style engines beat
//! edge streamers on traversal workloads.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example reachability
//! ```

use gpsa::programs::{Bfs, UNREACHED};
use gpsa::{Engine, EngineConfig};
use gpsa_graph::generate::{self, RmatParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::temp_dir().join("gpsa-reachability");
    std::fs::create_dir_all(&work_dir)?;

    // A web-graph-like structure: skewed R-MAT, 50k pages, 300k links.
    let graph = generate::rmat(50_000, 300_000, RmatParams::default(), 7);
    let n = graph.n_vertices;

    // Seed from the highest out-degree page (a "portal").
    let degrees = graph.out_degrees();
    let root = (0..n as u32).max_by_key(|&v| degrees[v as usize]).unwrap();
    println!("BFS from v{root} (out-degree {})", degrees[root as usize]);

    let engine = Engine::new(EngineConfig::new(&work_dir));
    let report = engine.run_edge_list(graph, "web", Bfs { root })?;

    // Frontier profile: vertices activated per superstep = BFS levels.
    println!("superstep  activated  time");
    for (i, (&a, t)) in report.activated.iter().zip(&report.step_times).enumerate() {
        println!("{i:>9}  {a:>9}  {t:?}");
    }

    let reached = report.values.iter().filter(|&&l| l < UNREACHED).count();
    let max_level = report
        .values
        .iter()
        .filter(|&&l| l < UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "reached {reached}/{n} pages, diameter from seed = {max_level}, \
         {} messages total",
        report.messages
    );

    // Level histogram.
    let mut hist = vec![0usize; max_level as usize + 1];
    for &l in report.values.iter().filter(|&&l| l < UNREACHED) {
        hist[l as usize] += 1;
    }
    println!("level histogram:");
    for (l, c) in hist.iter().enumerate() {
        println!("  level {l:>2}: {c}");
    }
    Ok(())
}
