//! Social-influence analysis: PageRank on a soc-pokec-like graph across
//! all three engines, with per-engine timing — a miniature of the paper's
//! Fig. 8 experiment.
//!
//! ```text
//! cargo run --release -p gpsa-cli --example social_influence
//! ```

use gpsa::{Engine, EngineConfig, Termination};
use gpsa_algorithms::gpsa_programs::PageRank;
use gpsa_algorithms::psw::PswPageRank;
use gpsa_algorithms::reference;
use gpsa_algorithms::xs::XsPageRank;
use gpsa_baselines::graphchi::{PswConfig, PswEngine, PswTermination};
use gpsa_baselines::xstream::{XsConfig, XsEngine, XsTermination};
use gpsa_graph::datasets::Dataset;
use gpsa_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::temp_dir().join("gpsa-social");
    std::fs::create_dir_all(&work_dir)?;
    // A ~1/512-scale soc-pokec stand-in keeps this example under a minute.
    let scale = 512;
    let el = Dataset::Pokec.generate(scale);
    println!(
        "soc-pokec at 1/{scale} scale: {} vertices, {} edges",
        el.n_vertices,
        el.len()
    );
    let steps = 5u64; // the paper's methodology

    // GPSA.
    let engine = Engine::new(
        EngineConfig::new(work_dir.join("gpsa")).with_termination(Termination::Supersteps(steps)),
    );
    let gpsa_report = engine.run_edge_list(el.clone(), "pokec", PageRank::default())?;

    // GraphChi-like.
    let mut psw_cfg = PswConfig::new(work_dir.join("psw"));
    psw_cfg.termination = PswTermination::Iterations(steps);
    psw_cfg.threads = 2;
    let psw_report = PswEngine::new(psw_cfg).run(&el, PswPageRank::default())?;

    // X-Stream-like.
    let mut xs_cfg = XsConfig::new(work_dir.join("xs"));
    xs_cfg.termination = XsTermination::Iterations(steps);
    xs_cfg.threads = 2;
    let xs_report = XsEngine::new(xs_cfg).run(&el, XsPageRank::default())?;

    let mut t = Table::new(&["engine", "supersteps", "mean step", "total"]);
    let mean = |times: &[std::time::Duration]| {
        let k = times.len().min(steps as usize).max(1);
        times[..k].iter().sum::<std::time::Duration>() / k as u32
    };
    t.row(&[
        "GPSA".to_string(),
        gpsa_report.supersteps.to_string(),
        format!("{:?}", mean(&gpsa_report.step_times)),
        format!("{:?}", gpsa_report.superstep_total()),
    ]);
    t.row(&[
        "GraphChi-like".to_string(),
        psw_report.iterations.to_string(),
        format!("{:?}", mean(&psw_report.step_times)),
        format!(
            "{:?}",
            psw_report.step_times.iter().sum::<std::time::Duration>()
        ),
    ]);
    t.row(&[
        "X-Stream-like".to_string(),
        xs_report.iterations.to_string(),
        format!("{:?}", mean(&xs_report.step_times)),
        format!(
            "{:?}",
            xs_report.step_times.iter().sum::<std::time::Duration>()
        ),
    ]);
    print!("{t}");

    // The engines agree on the result.
    let expect = reference::pagerank(&el, 0.85, steps as usize);
    let xs_ranks: Vec<f32> = xs_report
        .values
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
    println!(
        "max |GPSA - reference| = {:.2e}, max |X-Stream - reference| = {:.2e}",
        reference::max_abs_diff(&gpsa_report.values, &expect),
        reference::max_abs_diff(&xs_ranks, &expect),
    );
    Ok(())
}
