//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. The statistics
//! engine is replaced with a plain warmup + timed-iterations loop that
//! prints mean time per iteration (and derived throughput) to stdout.
//! Good enough to keep `cargo bench` runnable and the bench sources
//! compiling; the serious, gated numbers come from the repo's own
//! `bench_*` binaries, which never used criterion.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then the timed loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    match tp {
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => println!(
            "bench {label}: {per_iter:?}/iter, {:.0} elem/s",
            n as f64 / per_iter.as_secs_f64()
        ),
        Some(Throughput::Bytes(n)) if !per_iter.is_zero() => println!(
            "bench {label}: {per_iter:?}/iter, {:.1} MiB/s",
            n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
        ),
        _ => println!("bench {label}: {per_iter:?}/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &k| {
            b.iter(|| black_box(k * 2))
        });
        g.finish();
        // warmup + 3 timed iters
        assert_eq!(count, 4);
    }
}
