//! Offline shim for the subset of `crossbeam-channel` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. MPMC channels
//! built on `Mutex<VecDeque>` + two condvars. Semantics preserved:
//!
//! - `Sender` and `Receiver` are both `Clone + Send + Sync` (MPMC).
//! - `send` on a bounded channel blocks while full; errors once every
//!   receiver is gone (the value comes back in `SendError`).
//! - `recv` drains remaining messages after the last sender drops, then
//!   errors — disconnection is observed only on an empty queue.
//! - `select!` supports the shape used in this workspace: `recv` arms
//!   plus a `default(timeout)` arm, implemented by polling. Arms fire
//!   with `Err(RecvError)` once their channel is empty+disconnected,
//!   matching crossbeam's "disconnected channels are ready" rule.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` = unbounded. Capacity 0 (rendezvous) is rounded up to 1;
    /// nothing in this workspace constructs a zero-capacity channel.
    cap: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut inner = shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(t));
            }
            match shared.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = shared
                        .not_full
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        inner.queue.push_back(t);
        drop(inner);
        shared.not_empty.notify_one();
        Ok(())
    }

    pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        let mut inner = shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(t));
        }
        if let Some(cap) = shared.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(t));
            }
        }
        inner.queue.push_back(t);
        drop(inner);
        shared.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they can observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut inner = shared.lock();
        loop {
            if let Some(t) = inner.queue.pop_front() {
                drop(inner);
                shared.not_full.notify_one();
                return Ok(t);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut inner = shared.lock();
        if let Some(t) = inner.queue.pop_front() {
            drop(inner);
            shared.not_full.notify_one();
            return Ok(t);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut inner = shared.lock();
        loop {
            if let Some(t) = inner.queue.pop_front() {
                drop(inner);
                shared.not_full.notify_one();
                return Ok(t);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _res) = shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = g;
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked senders so they can observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Polling `select!` supporting `recv(rx) -> pat => body` arms with an
/// optional trailing `default(timeout) => body` arm — the only shapes
/// this workspace uses. A disconnected channel makes its arm ready with
/// `Err(RecvError)`, like real crossbeam. Without a `default` arm the
/// macro polls until some arm fires.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $pat:pat => $body:expr),+ $(,)?) => {{
        loop {
            $crate::__select_poll_arms!($(($rx, $pat, $body)),+);
            ::std::thread::sleep(::std::time::Duration::from_millis(1));
        }
    }};
    ($(recv($rx:expr) -> $pat:pat => $body:expr,)+ default($d:expr) => $default:expr $(,)?) => {{
        let __deadline = ::std::time::Instant::now() + $d;
        loop {
            $crate::__select_poll_arms!($(($rx, $pat, $body)),+);
            if ::std::time::Instant::now() >= __deadline {
                break $default;
            }
            ::std::thread::sleep(::std::time::Duration::from_millis(1));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select_poll_arms {
    ($(($rx:expr, $pat:pat, $body:expr)),+) => {
        $(
            match $rx.try_recv() {
                ::std::result::Result::Ok(__v) => {
                    let $pat = ::std::result::Result::<_, $crate::RecvError>::Ok(__v);
                    // Arm bodies routinely diverge (`break 'label ...`),
                    // making this break unreachable by design.
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    {
                        break $body;
                    }
                }
                ::std::result::Result::Err($crate::TryRecvError::Disconnected) => {
                    let $pat =
                        ::std::result::Result::<_, $crate::RecvError>::Err($crate::RecvError);
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    {
                        break $body;
                    }
                }
                ::std::result::Result::Err($crate::TryRecvError::Empty) => {}
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = vec![];
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_recv_and_default() {
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(5).unwrap();
        let got = select! {
            recv(rx) -> r => r.unwrap(),
            recv(rx2) -> r => r.unwrap(),
            default(Duration::from_millis(50)) => 0,
        };
        assert_eq!(got, 5);
        let got = select! {
            recv(rx) -> _r => 1,
            recv(rx2) -> _r => 2,
            default(Duration::from_millis(10)) => 3,
        };
        assert_eq!(got, 3);
    }
}
