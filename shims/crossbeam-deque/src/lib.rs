//! Offline shim for the subset of `crossbeam-deque` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. The Chase-Lev
//! work-stealing deque becomes a mutexed `VecDeque` shared between the
//! owning `Worker` and its `Stealer`s; `Injector` is a mutexed global
//! queue. Contention behaviour is coarser but the stealing contract
//! (FIFO worker, stealers take the oldest task, batch steal refills the
//! caller's deque) is preserved.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Result of a steal attempt. The shim never yields `Retry` (a mutex
/// cannot lose a race mid-operation) but the variant exists because
/// callers match on it.
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The owner's end of a work-stealing deque (FIFO flavour only — that is
/// the only flavour the actor scheduler constructs).
pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            q: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, t: T) {
        lock(&self.q).push_back(t);
    }

    pub fn pop(&self) -> Option<T> {
        lock(&self.q).pop_front()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.q).len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.q).len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

/// Global FIFO injector shared by all workers.
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, t: T) {
        lock(&self.q).push_back(t);
    }

    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move a batch of tasks into `dest` and pop one for the caller —
    /// the refill path of `find_task`. Batch size mirrors crossbeam's
    /// "half the injector, capped" heuristic loosely; exactness is not
    /// part of the contract.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.q);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut d = lock(&dest.q);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => d.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.q).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_and_steal() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(0)));
        assert!(!w.is_empty());
        let mut seen = vec![];
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        assert_eq!(seen, (1..1 + seen.len() as i32).collect::<Vec<_>>());
    }
}
