//! Offline shim for the subset of `crossbeam-queue` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. The lock-free
//! segmented queue becomes a mutexed `VecDeque`: same unbounded MPMC
//! semantics, coarser contention behaviour.

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    pub const fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, t: T) {
        self.lock().push_back(t);
    }

    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

/// Bounded MPMC ring; push fails with the rejected value when full.
pub struct ArrayQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cap: usize,
}

impl<T> ArrayQueue<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be non-zero");
        ArrayQueue {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
        }
    }

    pub fn push(&self, t: T) -> Result<(), T> {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.len() >= self.cap {
            Err(t)
        } else {
            q.push_back(t);
            Ok(())
        }
    }

    pub fn pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_queue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(1);
        assert!(q.push(1).is_ok());
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
    }
}
