//! Offline shim for the subset of `crossbeam-utils` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. `thread::scope`
//! wraps `std::thread::scope` (stable since 1.63) behind crossbeam's
//! `Result`-returning, closure-takes-`&Scope` signature.

pub mod thread {
    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives `&Scope` (unused by
        /// every call site in this workspace, but part of the signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope that joins all spawned threads before
    /// returning. A panic in any scoped thread (or in `f` itself)
    /// surfaces as `Err`, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Pads and aligns a value to cache-line size to avoid false sharing.
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let mut vals = vec![0u32; 4];
        super::thread::scope(|s| {
            for (i, v) in vals.iter_mut().enumerate() {
                s.spawn(move |_| *v = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
