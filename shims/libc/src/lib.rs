//! Offline shim for the subset of the `libc` crate this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. Hand-written
//! FFI declarations against the system C library (which rustc links
//! anyway) plus the constants the mmap/metrics code touches. Values are
//! the Linux x86-64 ABI ones; this workspace only targets that platform
//! (the real crate would be restored the moment the build environment
//! regains registry access).

#![allow(non_camel_case_types)]

pub use std::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;

pub const MAP_SHARED: c_int = 0x0001;
pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

pub const MS_ASYNC: c_int = 1;
pub const MS_INVALIDATE: c_int = 2;
pub const MS_SYNC: c_int = 4;

pub const MADV_NORMAL: c_int = 0;
pub const MADV_RANDOM: c_int = 1;
pub const MADV_SEQUENTIAL: c_int = 2;
pub const MADV_WILLNEED: c_int = 3;
pub const MADV_DONTNEED: c_int = 4;
pub const MADV_HUGEPAGE: c_int = 14;

pub const _SC_CLK_TCK: c_int = 2;
pub const _SC_PAGESIZE: c_int = 30;
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn getpid() -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysconf_pagesize_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "page size {ps}");
    }

    #[test]
    fn anonymous_mmap_roundtrip() {
        unsafe {
            let len = 4096usize;
            let p = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 42;
            assert_eq!(*(p as *const u8), 42);
            assert_eq!(munmap(p, len), 0);
        }
    }
}
