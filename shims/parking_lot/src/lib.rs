//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network and no vendored registry, so the
//! workspace pins its external dependencies to these in-tree shims (see the
//! root `Cargo.toml` `[workspace.dependencies]`). Each shim reimplements
//! exactly the API surface the codebase touches on top of `std` primitives:
//! correctness over speed, no poisoning (a poisoned std lock is re-entered,
//! matching parking_lot's no-poison semantics).

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// `parking_lot::Mutex`: lock() returns the guard directly (no `Result`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// `parking_lot::Condvar`: `wait` takes `&mut MutexGuard` instead of
/// consuming it. Bridged onto std's move-based API with a read/write pair;
/// sound because std's `wait` only panics on cross-mutex misuse, which
/// would be a bug at the call site anyway.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let g = std::ptr::read(guard);
            let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, g);
        }
    }

    /// Returns `true` if the wait timed out (parking_lot's
    /// `WaitTimeoutResult::timed_out()` polarity, collapsed to a bool).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let g = std::ptr::read(guard);
            let (g, res) = match self.0.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r.timed_out())
                }
            };
            std::ptr::write(guard, g);
            WaitTimeoutResult(res)
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::RwLock`: guards without `Result` wrapping.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
