//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. This is a
//! seeded-random property runner, not a port: each `proptest!` test runs
//! `cases` iterations with a deterministic per-case RNG (seed = fixed
//! golden-ratio mix of the case index), generating inputs through the
//! same `Strategy` combinator surface the tests already use (integer
//! ranges, tuples, `collection::vec`, `any::<T>()`, `prop_map`,
//! `prop_flat_map`, `sample::Index`). There is **no shrinking**: a
//! failing case panics with the case number, and determinism makes it
//! reproducible. That trades minimal counterexamples for a zero-dependency
//! build; the property coverage itself is unchanged.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is consulted; the other
    /// fields exist so `..ProptestConfig::default()` updates written
    /// against real proptest keep compiling (and stay meaningful).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
                fork: false,
            }
        }
    }

    /// Deterministic xoshiro256** source for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            let mut sm = case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635_16f5_311d;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value generator. `gen_value` replaces proptest's tree-based
    /// `new_tree`; combinators keep their upstream names so call sites
    /// compile unchanged.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (*self.start() as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A / a)(A / a, B / b)(A / a, B / b, C / c)(
        A / a,
        B / b,
        C / c,
        D / d
    )(A / a, B / b, C / c, D / d, E / e)(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f
    ));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Arbitrary for f32 {
        fn generate(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn generate(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for `collection::vec`.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty vec size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    /// An index into a collection whose length is only known at use
    /// time: `idx.index(len)` maps the raw draw uniformly into
    /// `0..len`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each `fn` in the block `cases` times with deterministic seeded
/// inputs. The `#[test]` attribute written inside the block is passed
/// through, so the functions register as ordinary tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        (1usize..10).prop_flat_map(|n| prop::collection::vec((0..n as u32, 0..n as u32), 0..=20))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn generated_pairs_respect_bounds(pairs in arb_pairs(), flip in any::<bool>()) {
            for (a, b) in &pairs {
                prop_assert!(*a < 10 && *b < 10);
            }
            let _ = flip;
        }

        #[test]
        fn index_maps_into_range(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let s = (0u32..1000, 0u32..1000);
        let a = s.gen_value(&mut crate::test_runner::TestRng::for_case(3));
        let b = s.gen_value(&mut crate::test_runner::TestRng::for_case(3));
        assert_eq!(a, b);
    }
}
