//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! See `shims/parking_lot/src/lib.rs` for why these exist. Everything in
//! this repo seeds explicitly (`StdRng::seed_from_u64`) and draws via
//! `gen`/`gen_range`, so the shim is a seeded splitmix64/xoshiro-style
//! generator with those two entry points. The bit streams differ from
//! upstream rand — all consumers are generators/tests that only need
//! determinism for a fixed seed, not upstream-identical streams.

use std::ops::{Range, RangeInclusive};

/// Construction from a seed. Only `seed_from_u64` is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types drawable via `rng.gen()`.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `rng.gen_range(lo..hi)`.
pub trait UniformInt: Copy + PartialOrd {
    fn from_u64_mod(v: u64, lo: Self, hi_exclusive: Self) -> Self;
    fn succ(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_u64_mod(v: u64, lo: Self, hi_exclusive: Self) -> Self {
                debug_assert!(lo < hi_exclusive, "gen_range on empty range");
                let span = (hi_exclusive as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the small spans the
                // generators use and irrelevant to correctness.
                lo.wrapping_add((v as u128 % span) as $t)
            }
            fn succ(self) -> Self { self.wrapping_add(1) }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing drawing trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let v = self.next_u64();
        T::from_u64_mod(v, range.start, range.end)
    }

    fn gen_range_inclusive<T: UniformInt>(&mut self, range: RangeInclusive<T>) -> T {
        let v = self.next_u64();
        T::from_u64_mod(v, *range.start(), range.end().succ())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Raw 64-bit source, mirroring `rand_core::RngCore` loosely.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Seeded xoshiro256** generator (statistics far beyond what the
    /// R-MAT generator and tests need).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; splitmix64 of
            // any seed cannot produce four zeros, but belt and braces.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The workspace requests the `small_rng` feature; alias it to the
    /// same generator.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds_and_f64_unit() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Spot-check rough uniformity: both halves of a range hit.
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..200 {
            if r.gen_range(0u32..2) == 0 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 50 && hi > 50);
    }
}
