//! Repo-level integration: the scaled paper datasets flow through
//! generation → preprocessing → all three engines, and the engines agree.

use gpsa::{Engine, EngineConfig, Termination};
use gpsa_algorithms::gpsa_programs::{Bfs, ConnectedComponents, PageRank};
use gpsa_algorithms::psw::PswCc;
use gpsa_algorithms::reference;
use gpsa_algorithms::xs::XsCc;
use gpsa_baselines::graphchi::{PswConfig, PswEngine};
use gpsa_baselines::xstream::{XsConfig, XsEngine};
use gpsa_graph::datasets::Dataset;
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-int-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Heavily scaled-down google graph exercises the whole dataset pipeline.
const SCALE: u64 = 2048;

#[test]
fn dataset_materialization_matches_catalog() {
    let dir = workdir("ds");
    for ds in Dataset::ALL {
        let el = ds.generate(SCALE * 16);
        assert_eq!(el.len(), ds.scaled_edges(SCALE * 16), "{ds}");
        assert_eq!(el.n_vertices, ds.scaled_nodes(SCALE * 16), "{ds}");
    }
    // Materialize one and reopen it.
    let (path, stats) = Dataset::Google.materialize(&dir, SCALE).unwrap();
    let csr = gpsa_graph::DiskCsr::open(&path).unwrap();
    assert_eq!(csr.n_edges(), stats.n_edges);
    assert_eq!(csr.n_vertices(), stats.n_vertices);
}

#[test]
fn google_standin_runs_all_three_algorithms_on_gpsa() {
    let dir = workdir("google");
    let (path, _) = Dataset::Google.materialize(&dir, SCALE).unwrap();
    let el = Dataset::Google.generate(SCALE);

    // PageRank, 5 supersteps (the paper's methodology).
    let pr =
        Engine::new(EngineConfig::new(dir.join("pr")).with_termination(Termination::Supersteps(5)))
            .run(&path, PageRank::default())
            .unwrap();
    let expect_pr = reference::pagerank(&el, 0.85, 5);
    assert!(
        reference::max_abs_diff(&pr.values, &expect_pr) < 1e-5,
        "pagerank parity"
    );

    // BFS from the hub.
    let deg = el.out_degrees();
    let root = (0..el.n_vertices as u32)
        .max_by_key(|&v| deg[v as usize])
        .unwrap();
    let bfs = Engine::new(EngineConfig::new(dir.join("bfs")))
        .run(&path, Bfs { root })
        .unwrap();
    assert_eq!(bfs.values, reference::bfs(&el, root), "bfs parity");

    // CC.
    let cc = Engine::new(EngineConfig::new(dir.join("cc")))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(cc.values, reference::connected_components(&el), "cc parity");
}

#[test]
fn all_three_engines_agree_on_pokec_standin() {
    let dir = workdir("pokec");
    let el = Dataset::Pokec.generate(SCALE * 8);
    let expect = reference::connected_components(&el);

    let engine = Engine::new(EngineConfig::new(dir.join("gpsa")));
    let gpsa_cc = engine
        .run_edge_list(el.clone(), "pokec-cc", ConnectedComponents)
        .unwrap();
    assert_eq!(gpsa_cc.values, expect, "gpsa");

    let psw = PswEngine::new(PswConfig::new(dir.join("psw")))
        .run(&el, PswCc)
        .unwrap();
    assert_eq!(psw.values, expect, "psw");

    let mut xcfg = XsConfig::new(dir.join("xs"));
    xcfg.in_memory = true;
    let xs = XsEngine::new(xcfg).run(&el, XsCc).unwrap();
    assert_eq!(xs.values, expect, "xstream");
}

#[test]
fn engine_scales_with_actor_counts() {
    // More dispatchers/computers than the default must not change results
    // (the paper runs with "thousands of actors").
    let dir = workdir("scalecfg");
    let el = Dataset::Google.generate(SCALE);
    let expect = reference::connected_components(&el);
    for (d, c) in [(1, 1), (4, 4), (16, 16), (64, 64)] {
        let config = EngineConfig::new(dir.join(format!("d{d}c{c}"))).with_actors(d, c);
        let engine = Engine::new(config);
        let got = engine
            .run_edge_list(el.clone(), &format!("g-{d}-{c}"), ConnectedComponents)
            .unwrap();
        assert_eq!(got.values, expect, "d={d} c={c}");
    }
}
