//! End-to-end pipeline tests: text input → external-sort preprocessing →
//! on-disk CSR → engine run, plus smoke tests of the `gpsa` binary.

use gpsa::programs::ConnectedComponents;
use gpsa::{Engine, EngineConfig};
use gpsa_algorithms::reference;
use gpsa_graph::{generate, preprocess, DiskCsr, EdgeList};
use std::path::PathBuf;
use std::process::Command;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-pipe-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn text_to_result_pipeline() {
    let dir = workdir("text");
    let el = generate::symmetrize(&generate::rmat(
        300,
        1500,
        generate::RmatParams::default(),
        17,
    ));
    let txt = dir.join("graph.txt");
    el.write_text_file(&txt).unwrap();

    let csr = dir.join("graph.gcsr");
    let stats =
        preprocess::text_to_csr(&txt, &csr, &preprocess::PreprocessOptions::default()).unwrap();
    assert_eq!(stats.n_edges, el.len());

    let report = Engine::new(EngineConfig::new(&dir))
        .run(&csr, ConnectedComponents)
        .unwrap();
    assert_eq!(report.values, reference::connected_components(&el));
}

#[test]
fn binary_external_sort_to_result_pipeline() {
    let dir = workdir("bin");
    let el = generate::rmat(400, 3000, generate::RmatParams::default(), 23);
    let bin = dir.join("graph.bin");
    el.write_binary_file(&bin).unwrap();

    // Tiny run capacity: the external sort really merges many runs.
    let opts = preprocess::PreprocessOptions {
        run_capacity: 100,
        with_degrees: true,
        temp_dir: Some(dir.clone()),
        ..Default::default()
    };
    let csr = dir.join("graph.gcsr");
    let stats = preprocess::binary_to_csr(&bin, &csr, &opts).unwrap();
    assert!(stats.runs >= 30);

    let d = DiskCsr::open(&csr).unwrap();
    assert_eq!(d.n_edges(), 3000);

    let report = Engine::new(EngineConfig::new(&dir))
        .run(&csr, ConnectedComponents)
        .unwrap();
    // A headerless binary edge list cannot express isolated tail vertices,
    // so the CSR may cover slightly fewer vertices than the generator's
    // nominal count; the covered prefix must still match, and any dropped
    // tail must be isolated.
    let expect = reference::connected_components(&el);
    let covered = report.values.len();
    assert!(covered <= expect.len());
    assert_eq!(report.values, expect[..covered]);
    let deg = el.out_degrees();
    let indeg = reference::in_degree(&el);
    for v in covered..el.n_vertices {
        assert_eq!(deg[v] + indeg[v], 0, "dropped vertex {v} must be isolated");
    }
}

fn gpsa_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpsa"))
}

#[test]
fn cli_help_and_unknown_command() {
    let out = gpsa_bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = gpsa_bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_generate_info_run_roundtrip() {
    let dir = workdir("cli");
    // generate
    let out = gpsa_bin()
        .args([
            "generate",
            "--dataset",
            "google",
            "--scale",
            "4096",
            "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let csr = dir.join("google-s4096.gcsr");
    assert!(csr.exists(), "generate output missing; stdout: {stdout}");

    // info
    let out = gpsa_bin()
        .args(["info", "--graph"])
        .arg(&csr)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vertices"), "info output: {stdout}");

    // run cc
    let out = gpsa_bin()
        .args(["run", "--algo", "cc", "--graph"])
        .arg(&csr)
        .args(["--work-dir"])
        .arg(dir.join("work"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("components:"), "run output: {stdout}");

    // run pagerank with explicit supersteps
    let out = gpsa_bin()
        .args(["run", "--algo", "pagerank", "--supersteps", "3", "--graph"])
        .arg(&csr)
        .args(["--work-dir"])
        .arg(dir.join("work-pr"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 5 vertices"), "pr output: {stdout}");
    assert!(stdout.contains("3 supersteps"), "pr output: {stdout}");
}

#[test]
fn cli_preprocess_text_input() {
    let dir = workdir("cli-prep");
    let el = EdgeList::from_edges(vec![
        (0u32, 1u32).into(),
        (1, 2).into(),
        (2, 0).into(),
        (2, 3).into(),
    ]);
    let txt = dir.join("tiny.txt");
    el.write_text_file(&txt).unwrap();
    let csr = dir.join("tiny.gcsr");
    let out = gpsa_bin()
        .args(["preprocess", "--input"])
        .arg(&txt)
        .args(["--output"])
        .arg(&csr)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "preprocess failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let d = DiskCsr::open(&csr).unwrap();
    assert_eq!(d.n_edges(), 4);
    assert_eq!(d.targets(2), &[0, 3]);
}

#[test]
fn cli_alternative_engines_run() {
    let dir = workdir("cli-engines");
    let el = generate::symmetrize(&generate::erdos_renyi(60, 240, 4));
    let txt = dir.join("g.txt");
    el.write_text_file(&txt).unwrap();
    let csr = dir.join("g.gcsr");
    preprocess::text_to_csr(&txt, &csr, &preprocess::PreprocessOptions::default()).unwrap();
    for engine in ["graphchi", "xstream", "sync", "dist"] {
        let out = gpsa_bin()
            .args(["run", "--algo", "cc", "--engine", engine, "--graph"])
            .arg(&csr)
            .args(["--work-dir"])
            .arg(dir.join(format!("work-{engine}")))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "engine {engine} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("label") || stdout.contains("iterations"),
            "engine {engine} output: {stdout}"
        );
    }
    // dist reports traffic.
    let out = gpsa_bin()
        .args([
            "run", "--algo", "cc", "--engine", "dist", "--nodes", "3", "--graph",
        ])
        .arg(&csr)
        .args(["--work-dir"])
        .arg(dir.join("work-dist3"))
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("traffic:"));
}

#[test]
fn cli_bfs_reports_reachability() {
    let dir = workdir("cli-bfs");
    let el = generate::chain(10);
    let txt = dir.join("chain.txt");
    el.write_text_file(&txt).unwrap();
    let csr = dir.join("chain.gcsr");
    preprocess::text_to_csr(&txt, &csr, &preprocess::PreprocessOptions::default()).unwrap();
    let out = gpsa_bin()
        .args(["run", "--algo", "bfs", "--root", "0", "--graph"])
        .arg(&csr)
        .args(["--work-dir"])
        .arg(dir.join("work"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reached 10/10"), "bfs output: {stdout}");
    assert!(stdout.contains("max level 9"), "bfs output: {stdout}");
}
