//! Fault-tolerance integration: crash injection at various superstep
//! boundaries, across algorithms, always converging to the crash-free
//! fixpoint (paper §IV-G).

use gpsa::programs::{Bfs, ConnectedComponents, PageRank};
use gpsa::{Engine, EngineConfig, RunOutcome, Termination, ValueFile};
use gpsa_algorithms::reference;
use gpsa_graph::{generate, preprocess, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-rec-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn materialize(dir: &std::path::Path, el: &EdgeList) -> PathBuf {
    let p = dir.join("graph.gcsr");
    preprocess::edges_to_csr(el.clone(), &p, &preprocess::PreprocessOptions::default()).unwrap();
    p
}

fn crash_config(dir: &std::path::Path, at: u64) -> EngineConfig {
    let mut c = EngineConfig::small(dir);
    c.durable = true;
    c.crash_after_dispatch = Some(at);
    c
}

fn crash_compute_config(dir: &std::path::Path, at: u64) -> EngineConfig {
    let mut c = EngineConfig::small(dir);
    c.durable = true;
    c.crash_in_compute = Some(at);
    c
}

fn resume_config(dir: &std::path::Path) -> EngineConfig {
    let mut c = EngineConfig::small(dir);
    c.resume = true;
    c
}

#[test]
fn cc_recovers_from_crashes_at_every_early_superstep() {
    let el = generate::symmetrize(&generate::rmat(
        300,
        1500,
        generate::RmatParams::default(),
        41,
    ));
    let expect = reference::connected_components(&el);
    for crash_at in [0u64, 1, 2, 3] {
        let dir = workdir(&format!("cc-{crash_at}"));
        let path = materialize(&dir, &el);
        let crashed = Engine::new(crash_config(&dir, crash_at))
            .run(&path, ConnectedComponents)
            .unwrap();
        assert_eq!(crashed.outcome, RunOutcome::Crashed, "crash at {crash_at}");

        let recovered = Engine::new(resume_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap();
        assert_eq!(recovered.outcome, RunOutcome::Completed);
        assert_eq!(recovered.values, expect, "crash at {crash_at}");
    }
}

#[test]
fn bfs_recovers_mid_traversal() {
    let el = generate::symmetrize(&generate::grid(12, 12));
    let expect = reference::bfs(&el, 0);
    let dir = workdir("bfs");
    let path = materialize(&dir, &el);
    let crashed = Engine::new(crash_config(&dir, 4))
        .run(&path, Bfs { root: 0 })
        .unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);
    let recovered = Engine::new(resume_config(&dir))
        .run(&path, Bfs { root: 0 })
        .unwrap();
    assert_eq!(recovered.values, expect);
}

#[test]
fn pagerank_recovers_with_fixed_superstep_budget() {
    // A PR run crashed at superstep 3 of 8 must, after recovery, complete
    // the remaining supersteps and land on the 8-step power iteration.
    let el = generate::symmetrize(&generate::erdos_renyi(150, 900, 3));
    let dir = workdir("pr");
    let path = materialize(&dir, &el);
    let steps = 8u64;

    let mut c = crash_config(&dir, 3);
    c.termination = Termination::Supersteps(steps);
    let crashed = Engine::new(c).run(&path, PageRank::default()).unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);

    let mut c = resume_config(&dir);
    c.termination = Termination::Supersteps(steps);
    let recovered = Engine::new(c).run(&path, PageRank::default()).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    // 3 committed before the crash + the re-run remainder.
    assert_eq!(recovered.supersteps, steps - 3);

    let expect = reference::pagerank(&el, 0.85, steps as usize);
    let diff = reference::max_abs_diff(&recovered.values, &expect);
    assert!(diff < 1e-5, "recovered PR diverges: {diff}");
}

#[test]
fn cc_recovers_from_mid_compute_crashes() {
    // A mid-compute crash is messier than the post-dispatch one: the
    // update column holds partial folds from the computers that already
    // reported, and the dispatch column is fully invalidated. Recovery
    // must discard all of it and replay from the last commit.
    // Same graph as the post-dispatch test above: known to run well past
    // superstep 2, so every crash point actually fires.
    let el = generate::symmetrize(&generate::rmat(
        300,
        1500,
        generate::RmatParams::default(),
        41,
    ));
    let expect = reference::connected_components(&el);
    for crash_at in [0u64, 1, 2] {
        let dir = workdir(&format!("cc-mid-{crash_at}"));
        let path = materialize(&dir, &el);
        let crashed = Engine::new(crash_compute_config(&dir, crash_at))
            .run(&path, ConnectedComponents)
            .unwrap();
        assert_eq!(
            crashed.outcome,
            RunOutcome::Crashed,
            "mid-compute crash at {crash_at}"
        );

        let recovered = Engine::new(resume_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap();
        assert_eq!(recovered.outcome, RunOutcome::Completed);
        assert_eq!(recovered.values, expect, "mid-compute crash at {crash_at}");
    }
}

#[test]
fn mid_compute_crash_leaves_header_stale_by_one() {
    let el = generate::cycle(50);
    let dir = workdir("mid-stale");
    let path = materialize(&dir, &el);
    let crashed = Engine::new(crash_compute_config(&dir, 2))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);
    let vf =
        ValueFile::open(Engine::new(EngineConfig::small(&dir)).value_file_path(&path)).unwrap();
    // Superstep 2 died before its commit, so the header still names 1.
    assert_eq!(vf.header().committed_superstep, Some(1));
}

#[test]
fn value_file_header_reflects_commits() {
    let el = generate::cycle(50);
    let dir = workdir("header");
    let path = materialize(&dir, &el);
    let mut c = EngineConfig::small(&dir);
    c.durable = true;
    c.termination = Termination::Supersteps(4);
    let engine = Engine::new(c);
    engine.run(&path, ConnectedComponents).unwrap();

    let vf = ValueFile::open(engine.value_file_path(&path)).unwrap();
    let h = vf.header();
    assert_eq!(h.n_vertices, 50);
    assert_eq!(h.committed_superstep, Some(3), "supersteps 0..=3 committed");
    // 4 supersteps: columns flip each commit, so the next dispatch column
    // is back to 0.
    assert_eq!(h.next_dispatch_col, 0);
}

#[test]
fn crashed_value_file_header_is_stale_by_one() {
    let el = generate::cycle(50);
    let dir = workdir("stale");
    let path = materialize(&dir, &el);
    let crashed = Engine::new(crash_config(&dir, 2))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);
    let vf =
        ValueFile::open(Engine::new(EngineConfig::small(&dir)).value_file_path(&path)).unwrap();
    // Superstep 2 crashed before commit, so the header still names 1.
    assert_eq!(vf.header().committed_superstep, Some(1));
}

#[test]
fn double_crash_then_recover() {
    // Crash, resume-and-crash-again later, resume to completion.
    let el = generate::symmetrize(&generate::rmat(
        200,
        1000,
        generate::RmatParams::default(),
        55,
    ));
    let expect = reference::connected_components(&el);
    let dir = workdir("double");
    let path = materialize(&dir, &el);

    let crashed = Engine::new(crash_config(&dir, 1))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);

    let mut c = resume_config(&dir);
    c.durable = true;
    c.crash_after_dispatch = Some(3);
    let crashed_again = Engine::new(c).run(&path, ConnectedComponents).unwrap();
    assert_eq!(crashed_again.outcome, RunOutcome::Crashed);

    let recovered = Engine::new(resume_config(&dir))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(recovered.values, expect);
}
