//! Superstep self-healing: the engine must survive an actor fleet that
//! dies (panic escalation) or wedges (watchdog deadline) *in process* —
//! tearing the fleet down, rolling the value file back to the last
//! committed superstep, and re-running — and must record every attempt
//! in the run report.

use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use gpsa::programs::ConnectedComponents;
use gpsa::{Engine, EngineConfig, EngineError, GraphMeta, RunOutcome, VertexProgram};
use gpsa_algorithms::reference;
use gpsa_graph::{generate, preprocess, EdgeList, VertexId};

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-heal-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn materialize(dir: &std::path::Path, el: &EdgeList) -> PathBuf {
    let p = dir.join("graph.gcsr");
    preprocess::edges_to_csr(el.clone(), &p, &preprocess::PreprocessOptions::default()).unwrap();
    p
}

/// Delegates to an inner program, but misbehaves in `gen_msg` exactly
/// once: the call that sees the countdown hit zero panics (or wedges).
/// The engine's recovery re-runs `gen_msg` for the replayed superstep,
/// and the countdown — by then negative — never fires again, so the
/// retry is clean.
struct Sabotaged<P> {
    inner: P,
    countdown: AtomicI64,
    wedge: Option<Duration>,
}

impl<P> Sabotaged<P> {
    fn panics_after(inner: P, calls: i64) -> Self {
        Sabotaged {
            inner,
            countdown: AtomicI64::new(calls),
            wedge: None,
        }
    }

    fn wedges_after(inner: P, calls: i64, hold: Duration) -> Self {
        Sabotaged {
            inner,
            countdown: AtomicI64::new(calls),
            wedge: Some(hold),
        }
    }
}

impl<P: VertexProgram> VertexProgram for Sabotaged<P> {
    type Value = P::Value;
    type MsgVal = P::MsgVal;

    fn init(&self, v: VertexId, meta: &GraphMeta) -> (Self::Value, bool) {
        self.inner.init(v, meta)
    }

    fn gen_msg(
        &self,
        src: VertexId,
        value: Self::Value,
        out_degree: u32,
        meta: &GraphMeta,
    ) -> Option<Self::MsgVal> {
        if self.countdown.fetch_sub(1, Ordering::Relaxed) == 0 {
            match self.wedge {
                // Simulate a stuck handler (e.g. blocked I/O): the worker
                // thread never returns, so only the watchdog can save the
                // run. The leaked sleeper dies with the test process.
                Some(hold) => std::thread::sleep(hold),
                None => panic!("sabotage: injected dispatcher panic"),
            }
        }
        self.inner.gen_msg(src, value, out_degree, meta)
    }

    fn compute(
        &self,
        v: VertexId,
        acc: Option<Self::Value>,
        basis: Self::Value,
        msg: Self::MsgVal,
        meta: &GraphMeta,
    ) -> Self::Value {
        self.inner.compute(v, acc, basis, msg, meta)
    }

    fn changed(&self, basis: Self::Value, new: Self::Value) -> bool {
        self.inner.changed(basis, new)
    }

    fn freshest(&self, dispatch_copy: Self::Value, update_copy: Self::Value) -> Self::Value {
        self.inner.freshest(dispatch_copy, update_copy)
    }

    fn delta(&self, basis: Self::Value, new: Self::Value) -> f64 {
        self.inner.delta(basis, new)
    }

    fn no_message_value(&self, v: VertexId, basis: Self::Value, meta: &GraphMeta) -> Self::Value {
        self.inner.no_message_value(v, basis, meta)
    }

    fn combines(&self) -> bool {
        self.inner.combines()
    }

    fn combine(&self, a: Self::MsgVal, b: Self::MsgVal) -> Self::MsgVal {
        self.inner.combine(a, b)
    }

    fn always_dispatch(&self) -> bool {
        self.inner.always_dispatch()
    }
}

fn test_graph(seed: u64) -> EdgeList {
    generate::symmetrize(&generate::rmat(
        200,
        1000,
        generate::RmatParams::default(),
        seed,
    ))
}

#[test]
fn engine_recovers_in_process_from_a_dispatcher_panic() {
    let el = test_graph(61);
    let expect = reference::connected_components(&el);
    let dir = workdir("panic");
    let path = materialize(&dir, &el);

    let mut c = EngineConfig::small(&dir);
    c.durable = true;
    let report = Engine::new(c)
        .run(&path, Sabotaged::panics_after(ConnectedComponents, 40))
        .unwrap();

    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, expect, "recovered run must hit the fixpoint");
    assert_eq!(report.retry_attempts, 1, "exactly one in-process retry");
    assert_eq!(report.retry_causes.len(), 1);
    assert!(
        report.retry_causes[0].contains("died"),
        "cause should name the escalated actor death: {:?}",
        report.retry_causes[0]
    );
}

#[test]
fn watchdog_rescues_a_wedged_fleet() {
    let el = test_graph(62);
    let expect = reference::connected_components(&el);
    let dir = workdir("wedge");
    let path = materialize(&dir, &el);

    let mut c = EngineConfig::small(&dir)
        .with_superstep_deadline(Duration::from_millis(500))
        .with_max_superstep_retries(2);
    c.durable = true;
    // Park one dispatcher for an hour: no panic, no progress, no report.
    // Without the watchdog this run would hang until the global timeout.
    let report = Engine::new(c)
        .run(
            &path,
            Sabotaged::wedges_after(ConnectedComponents, 40, Duration::from_secs(3600)),
        )
        .unwrap();

    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, expect);
    assert_eq!(report.retry_attempts, 1);
    assert!(
        report.retry_causes[0].contains("watchdog"),
        "cause should come from the deadline: {:?}",
        report.retry_causes[0]
    );
}

#[test]
fn retries_exhausted_surfaces_every_cause() {
    /// Panics on *every* `gen_msg`: no retry budget can save this run.
    struct AlwaysPanics;
    impl VertexProgram for AlwaysPanics {
        type Value = u32;
        type MsgVal = u32;
        fn init(&self, v: VertexId, _m: &GraphMeta) -> (u32, bool) {
            (v, true)
        }
        fn gen_msg(&self, _src: VertexId, _v: u32, _d: u32, _m: &GraphMeta) -> Option<u32> {
            panic!("sabotage: unconditional dispatcher panic");
        }
        fn compute(
            &self,
            _v: VertexId,
            acc: Option<u32>,
            basis: u32,
            msg: u32,
            _m: &GraphMeta,
        ) -> u32 {
            acc.unwrap_or(basis).min(msg)
        }
    }

    let el = generate::cycle(60);
    let dir = workdir("exhausted");
    let path = materialize(&dir, &el);

    let mut c = EngineConfig::small(&dir);
    c.durable = true;
    c.max_superstep_retries = 1;
    let err = Engine::new(c)
        .run(&path, AlwaysPanics)
        .expect_err("a fleet that always dies must exhaust its retries");

    match err {
        EngineError::RetriesExhausted(causes) => {
            // The initial attempt plus one retry both failed.
            assert_eq!(causes.len(), 2, "one cause per failed attempt: {causes:?}");
            assert!(causes.iter().all(|c| c.contains("died")), "{causes:?}");
        }
        other => panic!("expected RetriesExhausted, got: {other}"),
    }
}

#[test]
fn clean_runs_report_zero_retries() {
    let el = test_graph(63);
    let dir = workdir("clean");
    let path = materialize(&dir, &el);
    let report = Engine::new(EngineConfig::small(&dir))
        .run(&path, ConnectedComponents)
        .unwrap();
    assert_eq!(report.retry_attempts, 0);
    assert!(report.retry_causes.is_empty());
}
