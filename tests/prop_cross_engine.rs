//! Property-based cross-engine tests: on arbitrary random graphs, all
//! three engines must agree with the sequential references.

use gpsa::{Engine, EngineConfig, Termination};
use gpsa_algorithms::gpsa_programs::{Bfs, ConnectedComponents, PageRank, Sssp};
use gpsa_algorithms::psw::PswCc;
use gpsa_algorithms::reference;
use gpsa_algorithms::xs::XsBfs;
use gpsa_baselines::graphchi::{PswConfig, PswEngine};
use gpsa_baselines::xstream::{XsConfig, XsEngine};
use gpsa_graph::{Edge, EdgeList};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn workdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gpsa-prop-{}-{tag}-{case}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Strategy: a graph with 2..=40 vertices and 0..=120 arbitrary edges.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..=40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=120).prop_map(move |pairs| {
            let edges = pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| Edge::new(a, b))
                .collect();
            EdgeList::with_vertices(edges, n)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gpsa_cc_matches_reference(el in arb_graph()) {
        let expect = reference::connected_components(&el);
        let engine = Engine::new(EngineConfig::small(workdir("cc")));
        let got = engine.run_edge_list(el, "g", ConnectedComponents).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn gpsa_bfs_matches_reference(el in arb_graph(), root_sel in 0u32..40) {
        let root = root_sel % el.n_vertices as u32;
        let expect = reference::bfs(&el, root);
        let engine = Engine::new(EngineConfig::small(workdir("bfs")));
        let got = engine.run_edge_list(el, "g", Bfs { root }).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn gpsa_sssp_matches_bellman_ford(el in arb_graph()) {
        let expect = reference::sssp(&el, 0);
        let engine = Engine::new(EngineConfig::small(workdir("sssp")));
        let got = engine.run_edge_list(el, "g", Sssp { root: 0 }).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn gpsa_pagerank_matches_power_iteration(el in arb_graph()) {
        let steps = 6;
        let expect = reference::pagerank(&el, 0.85, steps);
        let engine = Engine::new(
            EngineConfig::small(workdir("pr"))
                .with_termination(Termination::Supersteps(steps as u64)),
        );
        let got = engine.run_edge_list(el, "g", PageRank::default()).unwrap();
        let diff = reference::max_abs_diff(&got.values, &expect);
        prop_assert!(diff < 1e-5, "diff {}", diff);
    }

    #[test]
    fn psw_cc_matches_reference(el in arb_graph()) {
        let expect = reference::connected_components(&el);
        let engine = PswEngine::new(PswConfig::new(workdir("psw")));
        let got = engine.run(&el, PswCc).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn xstream_bfs_matches_reference(el in arb_graph(), root_sel in 0u32..40) {
        let root = root_sel % el.n_vertices as u32;
        let expect = reference::bfs(&el, root);
        let mut cfg = XsConfig::new(workdir("xs"));
        cfg.in_memory = true;
        let got = XsEngine::new(cfg).run(&el, XsBfs { root }).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    /// The actor engine and the sequential-phase BSP engine execute the
    /// SAME VertexProgram trait; they must agree everywhere.
    #[test]
    fn actor_engine_matches_sync_engine_cc(el in arb_graph()) {
        let term = Termination::Quiescence { max_supersteps: 2000 };
        let sync = gpsa::SyncEngine::new(term).run(&el, ConnectedComponents);
        let engine = Engine::new(EngineConfig::small(workdir("sync-cc")).with_termination(term));
        let actor = engine.run_edge_list(el, "g", ConnectedComponents).unwrap();
        prop_assert_eq!(actor.values, sync.values);
    }

    #[test]
    fn actor_engine_matches_sync_engine_pagerank(el in arb_graph()) {
        let term = Termination::Supersteps(5);
        let sync = gpsa::SyncEngine::new(term).run(&el, PageRank::default());
        let engine = Engine::new(EngineConfig::small(workdir("sync-pr")).with_termination(term));
        let actor = engine.run_edge_list(el, "g", PageRank::default()).unwrap();
        let max_diff = actor.values.iter().zip(&sync.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(max_diff < 1e-6, "diff {}", max_diff);
    }

    /// Chunked dispatch must be invisible: a tiny chunk size and
    /// monolithic dispatch reach bit-identical fixpoints. BFS and CC fold
    /// with `min`, which is order-independent, so equality is exact even
    /// with two dispatchers interleaving chunks.
    #[test]
    fn chunked_dispatch_bit_identical_bfs_cc(el in arb_graph(), chunk in 1usize..=64) {
        let run_cc = |chunk: usize| {
            let config = EngineConfig::small(workdir("chunk-cc"))
                .with_dispatch_chunk(chunk);
            Engine::new(config).run_edge_list(el.clone(), "g", ConnectedComponents).unwrap()
        };
        let mono = run_cc(usize::MAX);
        let chunked = run_cc(chunk);
        prop_assert_eq!(&chunked.values, &mono.values);
        prop_assert_eq!(chunked.supersteps, mono.supersteps);
        prop_assert_eq!(chunked.messages, mono.messages);

        let root = 0u32;
        let run_bfs = |chunk: usize| {
            let config = EngineConfig::small(workdir("chunk-bfs"))
                .with_dispatch_chunk(chunk);
            Engine::new(config).run_edge_list(el.clone(), "g", Bfs { root }).unwrap()
        };
        prop_assert_eq!(run_bfs(chunk).values, run_bfs(usize::MAX).values);
    }

    /// PageRank's f32 sum depends on fold order, so bit-identity is
    /// checked with one dispatcher: message order is then deterministic,
    /// and chunk boundaries never force a flush, so chunking must not
    /// perturb a single bit.
    #[test]
    fn chunked_dispatch_bit_identical_pagerank(el in arb_graph(), chunk in 1usize..=64) {
        let run = |chunk: usize| {
            let config = EngineConfig::small(workdir("chunk-pr"))
                .with_actors(1, 2)
                .with_termination(Termination::Supersteps(5))
                .with_dispatch_chunk(chunk);
            Engine::new(config).run_edge_list(el.clone(), "g", PageRank::default()).unwrap()
        };
        let mono = run(usize::MAX);
        let chunked = run(chunk);
        prop_assert_eq!(chunked.values.len(), mono.values.len());
        for (i, (a, b)) in chunked.values.iter().zip(&mono.values).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "vertex {} differs: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_adjacency(el in arb_graph()) {
        let dir = workdir("csr");
        let path = dir.join("g.gcsr");
        gpsa_graph::preprocess::edges_to_csr(
            el.clone(),
            &path,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        ).unwrap();
        let d = gpsa_graph::DiskCsr::open(&path).unwrap();
        prop_assert_eq!(d.n_vertices(), el.n_vertices);
        prop_assert_eq!(d.n_edges(), el.len());
        let csr = gpsa_graph::Csr::from_edge_list(&el);
        let mut scratch = Vec::new();
        for v in 0..el.n_vertices as u32 {
            let rec = d.record_into(v, &mut scratch);
            prop_assert_eq!(rec.targets, csr.neighbors(v));
            prop_assert_eq!(rec.degree as usize, csr.neighbors(v).len());
        }
    }
}
